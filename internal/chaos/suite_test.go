// The chaos suite drives every engine entry point through every fault
// kind at every declared fault point, under the race detector, and checks
// the resilience contract: a delayed run still produces the correct
// result bit for bit; a canceled, budget-faulted, or panicking run
// returns a clean error in the resilient.ErrPartial family; and retrying
// — resuming from the attached checkpoint when one is attached — always
// converges to the uninterrupted result.
//
// The suite iterates chaos.Points(), so adding a fault point to an engine
// without teaching this suite how to drive it fails the test.
package chaos_test

import (
	"errors"
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/knowledge"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/resilient"
	"repro/internal/valence"
)

// suiteModel is the standard graded fixture: FloodSet under the
// single-mobile-failure adversary, n=3, explored to depth 2.
func suiteModel() core.Model { return mobile.New(protocols.FloodSet{Rounds: 2}, 3) }

// suiteGraph materializes the fixture graph with chaos disarmed.
func suiteGraph(t *testing.T) *core.IDGraph {
	t.Helper()
	g, err := core.ExploreID(suiteModel(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// hashBytes summarizes a byte slice for compact equality checks.
func hashBytes(b []uint8) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

func graphSummary(g *core.IDGraph) string {
	keys := make([]byte, 0, 64*g.Len())
	for _, k := range g.Keys {
		keys = append(keys, k...)
		keys = append(keys, 0)
	}
	return fmt.Sprintf("nodes=%d edges=%d depth=%d keys=%s",
		g.Len(), g.NumEdges(), g.Depth, hashBytes(keys))
}

func witnessSummary(w *valence.Witness) string {
	s := fmt.Sprintf("kind=%v explored=%d detail=%q", w.Kind, w.Explored, w.Detail)
	if w.Exec != nil {
		s += fmt.Sprintf(" init=%s steps=%d", w.Exec.Init.Key(), w.Exec.Len())
	}
	return s
}

// driver runs one engine entry point under a context; the summary must be
// identical across uninterrupted, delayed, and interrupt-resume runs.
type driver struct {
	// run executes the entry point and summarizes the result.
	run func(ctx *resilient.Ctx) (string, error)
	// hit is the fault-point hit the suite's rules fire on: deep enough to
	// interrupt mid-run where the point allows it.
	hit uint64
	// poolContained marks points polled inside resilient.Pool workers,
	// where an injected panic must surface as a *resilient.PanicError
	// instead of crossing the API boundary.
	poolContained bool
	// budgetErr, when non-nil, is the engine budget sentinel a KindBudget
	// fault at this point must satisfy errors.Is against.
	budgetErr error
}

// suiteDrivers maps every fault point to the entry point exercising it.
// g is shared, pre-built with chaos disarmed.
func suiteDrivers(g *core.IDGraph) map[string]driver {
	m := suiteModel()
	return map[string]driver{
		"explore.layer": {
			run: func(ctx *resilient.Ctx) (string, error) {
				gg, err := core.ExploreIDCtx(ctx, m, 2, 0, 1)
				if err != nil {
					return "", err
				}
				return graphSummary(gg), nil
			},
			hit:       2,
			budgetErr: core.ErrNodeBudget,
		},
		"explore.warm": {
			run: func(ctx *resilient.Ctx) (string, error) {
				gg, err := core.ExploreIDCtx(ctx, m, 2, 0, 4)
				if err != nil {
					return "", err
				}
				return graphSummary(gg), nil
			},
			hit:           1,
			poolContained: true,
			budgetErr:     core.ErrNodeBudget,
		},
		"certify.visit": {
			run: func(ctx *resilient.Ctx) (string, error) {
				w, err := valence.CertifyGraphCtx(ctx, g, 0)
				if err != nil {
					return "", err
				}
				return witnessSummary(w), nil
			},
			hit:       1,
			budgetErr: valence.ErrBudget,
		},
		"field.layer": {
			run: func(ctx *resilient.Ctx) (string, error) {
				f, err := valence.NewFieldParallelCtx(ctx, g, 2)
				if err != nil {
					return "", err
				}
				return hashBytes(f.Masks()), nil
			},
			hit: 2,
		},
		"field.shard": {
			run: func(ctx *resilient.Ctx) (string, error) {
				f, err := valence.NewFieldParallelCtx(ctx, g, 2)
				if err != nil {
					return "", err
				}
				return hashBytes(f.Masks()), nil
			},
			hit:           1,
			poolContained: true,
		},
		"decision.field.layer": {
			run: func(ctx *resilient.Ctx) (string, error) {
				masks, err := decision.FieldValencesCtx(ctx, g, decision.ConsensusCovering(3))
				if err != nil {
					return "", err
				}
				return hashBytes(masks), nil
			},
			hit: 2,
		},
		"knowledge.bucket": {
			run: func(ctx *resilient.Ctx) (string, error) {
				c, err := knowledge.NewClassesCtx(ctx, g.States)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("classes=%d of %d", c.Count(), g.Len()), nil
			},
			hit: 1,
		},
	}
}

// runCatching runs a driver and converts an escaped *chaos.Fault panic
// into (summary, err, the recovered fault). Non-fault panics re-panic.
func runCatching(d driver, ctx *resilient.Ctx) (s string, err error, panicked *chaos.Fault) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(*chaos.Fault)
			if !ok {
				panic(r)
			}
			panicked = f
		}
	}()
	s, err = d.run(ctx)
	return
}

// retryToBaseline reruns the driver with chaos disarmed, resuming from the
// checkpoint attached to err when one is, and returns the summary.
func retryToBaseline(t *testing.T, d driver, err error) string {
	t.Helper()
	ctx := resilient.Background()
	if ck, ok := resilient.CheckpointFrom(err); ok {
		sections, serr := ck.Sections()
		if serr != nil {
			t.Fatalf("encoding attached checkpoint: %v", serr)
		}
		ctx.SetResume(sections)
	}
	got, rerr := d.run(ctx)
	if rerr != nil {
		t.Fatalf("disarmed retry still failed: %v", rerr)
	}
	return got
}

// TestChaosSuite is the fault-kind × fault-point matrix.
func TestChaosSuite(t *testing.T) {
	g := suiteGraph(t)
	drivers := suiteDrivers(g)
	for _, point := range chaos.Points() {
		if _, ok := drivers[point]; !ok {
			t.Fatalf("fault point %q has no suite driver — every declared point must be exercised", point)
		}
	}

	baselines := make(map[string]string, len(drivers))
	for point, d := range drivers {
		s, err := d.run(resilient.Background())
		if err != nil {
			t.Fatalf("%s: baseline run failed: %v", point, err)
		}
		baselines[point] = s
	}

	kinds := []chaos.Kind{chaos.KindDelay, chaos.KindCancel, chaos.KindBudget, chaos.KindPanic}
	for _, point := range chaos.Points() {
		d := drivers[point]
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s/%s", point, kind), func(t *testing.T) {
				plan := chaos.NewPlan().Set(point, chaos.Rule{Hit: d.hit, Kind: kind})
				chaos.Arm(plan)
				defer chaos.Disarm()
				sum, err, panicked := runCatching(d, resilient.Background())
				chaos.Disarm()

				if fired := plan.Fired(); len(fired) != 1 {
					t.Fatalf("plan fired %d faults, want exactly 1", len(fired))
				}
				switch kind {
				case chaos.KindDelay:
					if err != nil || panicked != nil {
						t.Fatalf("delayed run must succeed; err=%v panic=%v", err, panicked)
					}
					if sum != baselines[point] {
						t.Fatalf("delayed run diverged:\n got %s\nwant %s", sum, baselines[point])
					}
				case chaos.KindPanic:
					if d.poolContained {
						var pe *resilient.PanicError
						if !errors.As(err, &pe) {
							t.Fatalf("pool point must contain the panic into a *PanicError, got err=%v panic=%v", err, panicked)
						}
						if !errors.Is(err, resilient.ErrPartial) {
							t.Fatalf("PanicError must wrap ErrPartial: %v", err)
						}
					} else if panicked == nil {
						t.Fatalf("expected the injected panic to cross the API boundary, got err=%v", err)
					}
					if err != nil {
						if got := retryToBaseline(t, d, err); got != baselines[point] {
							t.Fatalf("post-panic retry diverged:\n got %s\nwant %s", got, baselines[point])
						}
					}
				default: // KindCancel, KindBudget
					if panicked != nil {
						t.Fatalf("unexpected panic: %v", panicked)
					}
					if err == nil {
						t.Fatal("fault must surface as an error")
					}
					if !errors.Is(err, resilient.ErrPartial) {
						t.Fatalf("error outside the ErrPartial family: %v", err)
					}
					var f *chaos.Fault
					if !errors.As(err, &f) || f.Kind != kind {
						t.Fatalf("error does not carry the injected fault: %v", err)
					}
					if kind == chaos.KindBudget && d.budgetErr != nil && !errors.Is(err, d.budgetErr) {
						t.Fatalf("budget fault must satisfy the engine budget sentinel: %v", err)
					}
					if got := retryToBaseline(t, d, err); got != baselines[point] {
						t.Fatalf("resume diverged:\n got %s\nwant %s", got, baselines[point])
					}
				}
			})
		}
	}
}

// pipeline runs the whole layered analysis — explore, certify, field,
// decision valences, knowledge partition — under one context and
// summarizes every result. Fault panics escaping an engine are converted
// to their *chaos.Fault error.
func pipeline(ctx *resilient.Ctx) (s string, err error) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(*chaos.Fault)
			if !ok {
				panic(r)
			}
			s, err = "", f
		}
	}()
	m := suiteModel()
	g, err := core.ExploreIDCtx(ctx, m, 2, 0, 2)
	if err != nil {
		return "", err
	}
	w, err := valence.CertifyGraphCtx(ctx, g, 0)
	if err != nil {
		return "", err
	}
	f, err := valence.NewFieldParallelCtx(ctx, g, 2)
	if err != nil {
		return "", err
	}
	masks, err := decision.FieldValencesCtx(ctx, g, decision.ConsensusCovering(3))
	if err != nil {
		return "", err
	}
	c, err := knowledge.NewClassesCtx(ctx, g.States)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s | %s | field=%s | decision=%s | classes=%d",
		graphSummary(g), witnessSummary(w), hashBytes(f.Masks()), hashBytes(masks), c.Count()), nil
}

// TestChaosRandomSeeds replays seed-keyed random plans against the full
// pipeline: every outcome is either the baseline result or a clean
// ErrPartial-family error from which a disarmed retry (resuming when a
// checkpoint is attached) reaches the baseline; and the same seed always
// reproduces the same outcome.
func TestChaosRandomSeeds(t *testing.T) {
	baseline, err := pipeline(resilient.Background())
	if err != nil {
		t.Fatal(err)
	}
	kinds := []chaos.Kind{chaos.KindPanic, chaos.KindDelay, chaos.KindCancel, chaos.KindBudget}

	outcome := func(seed uint64) string {
		plan := chaos.RandomPlan(seed, chaos.Points(), 4, kinds)
		chaos.Arm(plan)
		defer chaos.Disarm()
		sum, err := pipeline(resilient.Background())
		chaos.Disarm()
		if err == nil {
			if sum != baseline {
				t.Fatalf("seed %d: chaos run diverged from baseline:\n got %s\nwant %s", seed, sum, baseline)
			}
			return "ok"
		}
		if !errors.Is(err, resilient.ErrPartial) {
			t.Fatalf("seed %d: error outside the ErrPartial family: %v", seed, err)
		}
		ctx := resilient.Background()
		if ck, ok := resilient.CheckpointFrom(err); ok {
			sections, serr := ck.Sections()
			if serr != nil {
				t.Fatalf("seed %d: encoding checkpoint: %v", seed, serr)
			}
			ctx.SetResume(sections)
		}
		resumed, rerr := pipeline(ctx)
		if rerr != nil {
			t.Fatalf("seed %d: disarmed retry failed: %v", seed, rerr)
		}
		if resumed != baseline {
			t.Fatalf("seed %d: resumed run diverged from baseline:\n got %s\nwant %s", seed, resumed, baseline)
		}
		return "err: " + err.Error()
	}

	for seed := uint64(1); seed <= 24; seed++ {
		first := outcome(seed)
		if second := outcome(seed); second != first {
			t.Fatalf("seed %d not deterministic:\n first  %s\n second %s", seed, first, second)
		}
	}
}
