package sim

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/proto"
)

// ErrClosed is returned by Cluster operations after Close.
var ErrClosed = errors.New("sim: cluster closed")

// DropRule decides whether the message from `from` to `to` is lost in the
// given (1-based) round. A nil rule drops nothing.
type DropRule func(round, from, to int) bool

// Cluster executes a synchronous protocol as n concurrent worker
// goroutines exchanging messages through a round controller. It exists to
// run the same protocols the analysis engine reasons about as real
// concurrent processes; the controller enacts the environment (message
// drops) between the send and deliver phases of each round.
//
// A Cluster owns its goroutines: Close signals them to stop and waits for
// them to exit.
type Cluster struct {
	n       int
	p       proto.SyncProtocol
	workers []*worker
	round   int
	closed  bool
	wg      sync.WaitGroup
}

type worker struct {
	id    int
	reqC  chan workerReq
	stopC chan struct{}
}

type workerReq struct {
	// deliver is nil for a send-phase request; otherwise the received
	// message vector to consume.
	deliver []string
	respC   chan workerResp
}

type workerResp struct {
	sends   []string
	state   string
	decided int
	ok      bool
}

// NewCluster starts n workers running protocol p from the given inputs.
func NewCluster(p proto.SyncProtocol, inputs []int) *Cluster {
	n := len(inputs)
	c := &Cluster{n: n, p: p, workers: make([]*worker, n)}
	for i := 0; i < n; i++ {
		w := &worker{
			id:    i,
			reqC:  make(chan workerReq),
			stopC: make(chan struct{}),
		}
		c.workers[i] = w
		state := p.Init(n, i, inputs[i])
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serve(w, state)
		}()
	}
	return c
}

// serve is the worker goroutine: it answers send-phase and deliver-phase
// requests until stopped.
func (c *Cluster) serve(w *worker, state string) {
	for {
		select {
		case <-w.stopC:
			return
		case req := <-w.reqC:
			if req.deliver == nil {
				req.respC <- c.respFor(state, c.p.Send(state))
				continue
			}
			state = c.p.Deliver(state, req.deliver)
			req.respC <- c.respFor(state, nil)
		}
	}
}

func (c *Cluster) respFor(state string, sends []string) workerResp {
	resp := workerResp{sends: sends, state: state, decided: core.Undecided}
	if v, ok := c.p.Decide(state); ok {
		resp.decided = v
		resp.ok = true
	}
	return resp
}

// Step runs one synchronous round under the drop rule and returns the
// workers' post-round decisions (core.Undecided where undecided).
func (c *Cluster) Step(drop DropRule) ([]int, error) {
	if c.closed {
		return nil, ErrClosed
	}
	c.round++
	// Send phase: collect everyone's messages concurrently.
	sends := make([][]string, c.n)
	resps := make([]chan workerResp, c.n)
	for i, w := range c.workers {
		resps[i] = make(chan workerResp, 1)
		w.reqC <- workerReq{respC: resps[i]}
	}
	for i := range c.workers {
		r := <-resps[i]
		sends[i] = r.sends
	}
	// Route with drops, then deliver concurrently.
	routed, dropped := 0, 0
	decisions := make([]int, c.n)
	for j, w := range c.workers {
		in := make([]string, c.n)
		for i := 0; i < c.n; i++ {
			if i == j {
				in[i] = ""
				continue
			}
			if drop != nil && drop(c.round, i, j) {
				in[i] = ""
				dropped++
				continue
			}
			if j < len(sends[i]) {
				in[i] = sends[i][j]
				routed++
			}
		}
		resps[j] = make(chan workerResp, 1)
		w.reqC <- workerReq{deliver: in, respC: resps[j]}
	}
	for j := range c.workers {
		r := <-resps[j]
		decisions[j] = r.decided
	}
	if rec := obs.Active(); rec != nil {
		rec.Add("sim.rounds", 1)
		rec.Add("sim.messages", int64(routed))
		rec.Add("sim.drops", int64(dropped))
	}
	return decisions, nil
}

// RunRounds executes the given number of rounds and returns the final
// decisions.
func (c *Cluster) RunRounds(rounds int, drop DropRule) ([]int, error) {
	var decisions []int
	var err error
	for r := 0; r < rounds; r++ {
		decisions, err = c.Step(drop)
		if err != nil {
			return nil, err
		}
	}
	return decisions, nil
}

// States returns the workers' current local states (a synchronous probe
// through the request channel).
func (c *Cluster) States() ([]string, error) {
	if c.closed {
		return nil, ErrClosed
	}
	out := make([]string, c.n)
	for i, w := range c.workers {
		respC := make(chan workerResp, 1)
		w.reqC <- workerReq{respC: respC}
		r := <-respC
		out[i] = r.state
	}
	return out, nil
}

// Round returns the number of completed rounds.
func (c *Cluster) Round() int { return c.round }

// Close stops all workers and waits for them to exit. It is idempotent.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, w := range c.workers {
		close(w.stopC)
	}
	c.wg.Wait()
}

// String implements fmt.Stringer.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster(n=%d,%s,round=%d)", c.n, c.p.Name(), c.round)
}
