package sim_test

import (
	"testing"

	"repro/internal/asyncmp"
	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/sim"
)

// TestAsyncClusterMatchesModel cross-validates the goroutine runtime
// against the state-space model on a mixed schedule: sequential phases, a
// concurrent block, and a drop-one round.
func TestAsyncClusterMatchesModel(t *testing.T) {
	const n, phases = 3, 3
	p := protocols.MPFlood{Phases: phases}
	inputs := []int{0, 1, 1}

	c := sim.NewAsyncCluster(p, inputs)
	defer c.Close()
	m := asyncmp.New(p, n)
	x := m.Initial(inputs)

	// Layer 1: full permutation [2,0,1].
	if err := c.Schedule([]int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	x = m.Sequential(x, []int{2, 0, 1})
	// Layer 2: concurrent block {0,1} then 2.
	if err := c.PhaseBlock(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Phase(2); err != nil {
		t.Fatal(err)
	}
	x = m.WithPair(x, []int{0, 1, 2}, 0)
	// Layer 3: drop process 1.
	if err := c.Schedule([]int{0, 2}); err != nil {
		t.Fatal(err)
	}
	x = m.Sequential(x, []int{0, 2})

	states, err := c.States()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if states[i] != x.ProtocolState(i) {
			t.Errorf("process %d: cluster state %q != model %q", i, states[i], x.ProtocolState(i))
		}
	}
	// Outstanding backlogs must match too.
	for i := 0; i < n; i++ {
		model := x.Outstanding(i)
		cluster := c.Outstanding(i)
		for j := 0; j < n; j++ {
			if len(model[j]) != len(cluster[j]) {
				t.Errorf("outstanding %d->%d: cluster %d != model %d", j, i, len(cluster[j]), len(model[j]))
				continue
			}
			for k := range model[j] {
				if model[j][k] != cluster[j][k] {
					t.Errorf("outstanding %d->%d[%d] differs", j, i, k)
				}
			}
		}
	}
}

// TestAsyncClusterDecisions: flooding decides after its phase budget.
func TestAsyncClusterDecisions(t *testing.T) {
	const n = 3
	p := protocols.MPFlood{Phases: 2}
	c := sim.NewAsyncCluster(p, []int{1, 1, 1})
	defer c.Close()
	for r := 0; r < 2; r++ {
		if err := c.Schedule([]int{0, 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	decisions, err := c.Decisions()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range decisions {
		if v != 1 {
			t.Errorf("process %d decided %d, want 1", i, v)
		}
	}
}

// TestAsyncClusterStarvation: never scheduling a process leaves it
// undecided with a growing backlog, while the others decide.
func TestAsyncClusterStarvation(t *testing.T) {
	const n = 3
	p := protocols.MPFlood{Phases: 2}
	c := sim.NewAsyncCluster(p, []int{0, 1, 1})
	defer c.Close()
	for r := 0; r < 3; r++ {
		if err := c.Schedule([]int{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	decisions, err := c.Decisions()
	if err != nil {
		t.Fatal(err)
	}
	if decisions[0] != core.Undecided {
		t.Errorf("starved process decided %d", decisions[0])
	}
	if decisions[1] == core.Undecided || decisions[2] == core.Undecided {
		t.Error("scheduled processes undecided")
	}
	if got := c.Outstanding(0); len(got[1]) != 3 || len(got[2]) != 3 {
		t.Errorf("starved backlog = %d,%d, want 3,3", len(got[1]), len(got[2]))
	}
}

// TestAsyncClusterClose: idempotent shutdown, operations fail after.
func TestAsyncClusterClose(t *testing.T) {
	c := sim.NewAsyncCluster(protocols.MPFlood{Phases: 1}, []int{0, 1})
	c.Close()
	c.Close()
	if _, err := c.Phase(0); err == nil {
		t.Error("Phase after Close must fail")
	}
	if err := c.PhaseBlock(0, 1); err == nil {
		t.Error("PhaseBlock after Close must fail")
	}
	if _, err := c.Decisions(); err == nil {
		t.Error("Decisions after Close must fail")
	}
}
