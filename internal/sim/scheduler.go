// Package sim is the executable run substrate: it drives any model's
// protocol through concrete executions under a pluggable scheduler — a
// seeded random scheduler for statistical exploration, a scripted scheduler
// for replaying witness runs, and an adversarial scheduler that enacts the
// paper's bivalence-chasing environment. It also provides a goroutine-based
// cluster runtime (Cluster) that executes synchronous protocols as real
// concurrent processes exchanging messages over channels.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/valence"
)

// Scheduler chooses the environment's next action among a state's
// successors.
type Scheduler interface {
	// Name identifies the scheduler.
	Name() string
	// Next returns the index of the successor to take, or false to stop
	// the run.
	Next(x core.State, succs []core.Succ) (int, bool)
}

// Random is a seeded uniformly-random scheduler.
type Random struct {
	rng *rand.Rand
}

var _ Scheduler = (*Random)(nil)

// NewRandom returns a random scheduler with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Scheduler.
func (r *Random) Name() string { return "random" }

// Next implements Scheduler.
func (r *Random) Next(_ core.State, succs []core.Succ) (int, bool) {
	if len(succs) == 0 {
		return 0, false
	}
	return r.rng.Intn(len(succs)), true
}

// Script replays a fixed sequence of action labels (e.g. a witness
// execution's Actions()); it stops when the script is exhausted or an
// action is not offered.
type Script struct {
	actions []string
	pos     int
}

var _ Scheduler = (*Script)(nil)

// NewScript returns a scheduler replaying the given actions.
func NewScript(actions []string) *Script {
	return &Script{actions: append([]string(nil), actions...)}
}

// Name implements Scheduler.
func (s *Script) Name() string { return "script" }

// Next implements Scheduler.
func (s *Script) Next(_ core.State, succs []core.Succ) (int, bool) {
	if s.pos >= len(s.actions) {
		return 0, false
	}
	want := s.actions[s.pos]
	for i, succ := range succs {
		if succ.Action == want {
			s.pos++
			return i, true
		}
	}
	return 0, false
}

// Remaining returns how many scripted actions were not consumed.
func (s *Script) Remaining() int { return len(s.actions) - s.pos }

// Adversary is the paper's environment: it chases bivalent successors
// (Lemma 4.1) to postpone decision as long as possible, falling back to the
// first successor when no bivalent one exists.
type Adversary struct {
	oracle  *valence.Oracle
	horizon valence.HorizonFunc
	depth   int
}

var _ Scheduler = (*Adversary)(nil)

// NewAdversary returns a bivalence-chasing scheduler using the oracle with
// per-depth horizons.
func NewAdversary(o *valence.Oracle, horizon valence.HorizonFunc) *Adversary {
	return &Adversary{oracle: o, horizon: horizon}
}

// Name implements Scheduler.
func (a *Adversary) Name() string { return "adversary" }

// Next implements Scheduler.
func (a *Adversary) Next(_ core.State, succs []core.Succ) (int, bool) {
	a.depth++
	h := a.horizon(a.depth)
	for i, s := range succs {
		if a.oracle.Bivalent(s.State, h) {
			return i, true
		}
	}
	if len(succs) == 0 {
		return 0, false
	}
	return 0, true
}

// FirstAction always picks the first successor (the failure-free action in
// the synchronous models).
type FirstAction struct{}

var _ Scheduler = FirstAction{}

// Name implements Scheduler.
func (FirstAction) Name() string { return "first" }

// Next implements Scheduler.
func (FirstAction) Next(_ core.State, succs []core.Succ) (int, bool) {
	if len(succs) == 0 {
		return 0, false
	}
	return 0, true
}

// Crash targets one process in the synchronous models: at a scheduled
// layer it picks the action silencing that process to a prefix set, and the
// failure-free action otherwise.
type Crash struct {
	// Process is the 0-based process to fail.
	Process int
	// AtLayer is the layer (1-based count of Next calls) at which to fail.
	AtLayer int
	// OmitTo is the size of the prefix omission set [k].
	OmitTo int

	layer int
}

var _ Scheduler = (*Crash)(nil)

// Name implements Scheduler.
func (c *Crash) Name() string {
	return fmt.Sprintf("crash(p=%d,layer=%d,k=%d)", c.Process, c.AtLayer, c.OmitTo)
}

// Next implements Scheduler.
func (c *Crash) Next(_ core.State, succs []core.Succ) (int, bool) {
	c.layer++
	if len(succs) == 0 {
		return 0, false
	}
	if c.layer == c.AtLayer {
		want := fmt.Sprintf("(%d,[%d])", c.Process, c.OmitTo)
		for i, s := range succs {
			if s.Action == want {
				return i, true
			}
		}
	}
	return 0, true
}
