package sim

import (
	"errors"

	"repro/internal/core"
	"repro/internal/obs"
)

// ErrNoSuccessors is returned when a model offers no successors (models in
// this repository always offer at least one; seeing this indicates a model
// bug).
var ErrNoSuccessors = errors.New("sim: model offered no successors")

// Outcome summarizes one finished run.
type Outcome struct {
	// Exec is the executed prefix.
	Exec *core.Execution
	// Layers is the number of layers executed.
	Layers int
	// Decided[i] is process i's decision, core.Undecided if none.
	Decided []int
	// AllDecided reports whether every non-failed process decided.
	AllDecided bool
	// Agreement reports whether all non-failed decided processes agree.
	Agreement bool
	// DecisionLayer is the first layer at which every non-failed process
	// had decided, or -1.
	DecisionLayer int
}

// Runner executes runs of a model under a scheduler.
type Runner struct {
	// Model is the layered model to execute.
	Model core.Model
	// MaxLayers bounds each run.
	MaxLayers int
}

// Run executes one run from init under sched, stopping at MaxLayers, when
// the scheduler stops, or as soon as every non-failed process has decided.
func (r *Runner) Run(init core.State, sched Scheduler) (*Outcome, error) {
	exec := &core.Execution{Init: init}
	x := init
	decisionLayer := -1
	if core.AllDecided(x) {
		decisionLayer = 0
	}
	for layer := 1; decisionLayer < 0 && layer <= r.MaxLayers; layer++ {
		succs := r.Model.Successors(x)
		if len(succs) == 0 {
			return nil, ErrNoSuccessors
		}
		i, ok := sched.Next(x, succs)
		if !ok {
			break
		}
		if i < 0 || i >= len(succs) {
			i = 0
		}
		exec = exec.Extend(succs[i].Action, succs[i].State)
		x = succs[i].State
		if core.AllDecided(x) {
			decisionLayer = exec.Len()
		}
	}
	if rec := obs.Active(); rec != nil {
		rec.Add("sim.runs", 1)
		rec.Add("sim.layers", int64(exec.Len()))
		if decisionLayer >= 0 {
			rec.Add("sim.decided", 1)
		}
	}
	return r.outcome(exec, decisionLayer), nil
}

func (r *Runner) outcome(exec *core.Execution, decisionLayer int) *Outcome {
	x := exec.Last()
	out := &Outcome{
		Exec:          exec,
		Layers:        exec.Len(),
		Decided:       make([]int, x.N()),
		AllDecided:    core.AllDecided(x),
		Agreement:     true,
		DecisionLayer: decisionLayer,
	}
	seen := core.Undecided
	for i := 0; i < x.N(); i++ {
		v, ok := x.Decided(i)
		if !ok {
			out.Decided[i] = core.Undecided
			continue
		}
		out.Decided[i] = v
		if x.FailedAt(i) {
			continue
		}
		if seen != core.Undecided && v != seen {
			out.Agreement = false
		}
		seen = v
	}
	return out
}

// Stats aggregates outcomes across many runs.
type Stats struct {
	Runs           int
	Decided        int
	AgreementOK    int
	Violations     int
	MaxLayersToEnd int
	TotalLayers    int
}

// RunMany executes runs from every initial state, `per` seeds each, using
// fresh random schedulers derived from baseSeed, and aggregates.
func (r *Runner) RunMany(per int, baseSeed int64) (*Stats, error) {
	st := &Stats{}
	seed := baseSeed
	for _, init := range r.Model.Inits() {
		for k := 0; k < per; k++ {
			seed++
			out, err := r.Run(init, NewRandom(seed))
			if err != nil {
				return nil, err
			}
			st.Runs++
			st.TotalLayers += out.Layers
			if out.Layers > st.MaxLayersToEnd {
				st.MaxLayersToEnd = out.Layers
			}
			if out.AllDecided {
				st.Decided++
			}
			if out.Agreement {
				st.AgreementOK++
			} else {
				st.Violations++
			}
		}
	}
	return st, nil
}
