package sim_test

import (
	"testing"

	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/syncmp"
)

func BenchmarkRunnerRandomRun(b *testing.B) {
	const n, tt = 4, 2
	p := protocols.FloodSet{Rounds: tt + 1}
	m := syncmp.NewSt(p, n, tt)
	r := &sim.Runner{Model: m, MaxLayers: tt + 1}
	init := m.Initial([]int{0, 1, 0, 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := r.Run(init, sim.NewRandom(int64(i)))
		if err != nil || !out.Agreement {
			b.Fatal("run failed")
		}
	}
}

func BenchmarkClusterRound(b *testing.B) {
	p := protocols.FloodSet{Rounds: 1 << 30} // never decide: pure round cost
	c := sim.NewCluster(p, []int{0, 1, 0, 1})
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Step(nil); err != nil {
			b.Fatal(err)
		}
	}
}
