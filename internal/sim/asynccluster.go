package sim

import (
	"sync"

	"repro/internal/core"
	"repro/internal/proto"
)

// AsyncCluster executes an asynchronous message-passing protocol as n
// concurrent worker goroutines. The controller enacts scheduling actions —
// which process performs its next local phase, sequentially or as a
// concurrent block — and routes messages between mailboxes; the protocol
// computation itself (Send/Receive) runs inside the worker goroutines.
// Phase semantics match internal/asyncmp exactly (send from the pre-phase
// state, then receive everything outstanding), and the package tests
// cross-validate the cluster against the state-space model action by
// action.
//
// An AsyncCluster owns its goroutines: Close signals them to stop and
// waits for them to exit.
type AsyncCluster struct {
	n       int
	p       proto.MPProtocol
	workers []*asyncWorker
	mailbox [][][]string // mailbox[to][from]: outstanding messages
	closed  bool
	wg      sync.WaitGroup
}

type asyncWorker struct {
	id    int
	reqC  chan asyncReq
	stopC chan struct{}
}

type asyncReq struct {
	// deliver is nil for a send-phase request; otherwise the outstanding
	// messages (per sender) to consume.
	deliver [][]string
	respC   chan asyncResp
}

type asyncResp struct {
	sends   []string
	state   string
	decided int
}

// NewAsyncCluster starts n workers running protocol p from the given
// inputs.
func NewAsyncCluster(p proto.MPProtocol, inputs []int) *AsyncCluster {
	n := len(inputs)
	c := &AsyncCluster{
		n:       n,
		p:       p,
		workers: make([]*asyncWorker, n),
		mailbox: make([][][]string, n),
	}
	for i := 0; i < n; i++ {
		c.mailbox[i] = make([][]string, n)
		w := &asyncWorker{
			id:    i,
			reqC:  make(chan asyncReq),
			stopC: make(chan struct{}),
		}
		c.workers[i] = w
		state := p.Init(n, i, inputs[i])
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serve(w, state)
		}()
	}
	return c
}

func (c *AsyncCluster) serve(w *asyncWorker, state string) {
	for {
		select {
		case <-w.stopC:
			return
		case req := <-w.reqC:
			if req.deliver == nil {
				req.respC <- c.resp(state, c.p.Send(state))
				continue
			}
			state = c.p.Receive(state, req.deliver)
			req.respC <- c.resp(state, nil)
		}
	}
}

func (c *AsyncCluster) resp(state string, sends []string) asyncResp {
	r := asyncResp{sends: sends, state: state, decided: core.Undecided}
	if v, ok := c.p.Decide(state); ok {
		r.decided = v
	}
	return r
}

// sendPhase asks worker i for its phase messages and routes them.
func (c *AsyncCluster) sendPhase(i int) {
	respC := make(chan asyncResp, 1)
	c.workers[i].reqC <- asyncReq{respC: respC}
	r := <-respC
	for d := 0; d < c.n && d < len(r.sends); d++ {
		if d == i || r.sends[d] == "" {
			continue
		}
		c.mailbox[d][i] = append(c.mailbox[d][i], r.sends[d])
	}
}

// recvPhase delivers worker i's outstanding mailbox and returns its
// decision.
func (c *AsyncCluster) recvPhase(i int) int {
	deliver := make([][]string, c.n)
	for j := 0; j < c.n; j++ {
		deliver[j] = c.mailbox[i][j]
		c.mailbox[i][j] = nil
	}
	respC := make(chan asyncResp, 1)
	c.workers[i].reqC <- asyncReq{deliver: deliver, respC: respC}
	return (<-respC).decided
}

// Phase runs one complete local phase of process i and returns its
// post-phase decision.
func (c *AsyncCluster) Phase(i int) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	c.sendPhase(i)
	return c.recvPhase(i), nil
}

// PhaseBlock runs the local phases of a and b as a concurrent block: both
// send (from their pre-block states) before either receives, so each
// receives the other's fresh message — the immediate-snapshot orientation.
func (c *AsyncCluster) PhaseBlock(a, b int) error {
	if c.closed {
		return ErrClosed
	}
	c.sendPhase(a)
	c.sendPhase(b)
	c.recvPhase(a)
	c.recvPhase(b)
	return nil
}

// Schedule runs a sequence of sequential phases.
func (c *AsyncCluster) Schedule(order []int) error {
	for _, i := range order {
		if _, err := c.Phase(i); err != nil {
			return err
		}
	}
	return nil
}

// Decisions probes every worker's current decision.
func (c *AsyncCluster) Decisions() ([]int, error) {
	if c.closed {
		return nil, ErrClosed
	}
	out := make([]int, c.n)
	for i, w := range c.workers {
		respC := make(chan asyncResp, 1)
		w.reqC <- asyncReq{respC: respC}
		out[i] = (<-respC).decided
	}
	return out, nil
}

// States probes every worker's current protocol state.
func (c *AsyncCluster) States() ([]string, error) {
	if c.closed {
		return nil, ErrClosed
	}
	out := make([]string, c.n)
	for i, w := range c.workers {
		respC := make(chan asyncResp, 1)
		w.reqC <- asyncReq{respC: respC}
		out[i] = (<-respC).state
	}
	return out, nil
}

// Outstanding returns the mailbox backlog for process i, per sender.
func (c *AsyncCluster) Outstanding(i int) [][]string {
	out := make([][]string, c.n)
	for j := 0; j < c.n; j++ {
		out[j] = append([]string(nil), c.mailbox[i][j]...)
	}
	return out
}

// Close stops all workers and waits for them to exit. Idempotent.
func (c *AsyncCluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, w := range c.workers {
		close(w.stopC)
	}
	c.wg.Wait()
}
