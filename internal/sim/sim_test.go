package sim_test

import (
	"strings"
	"testing"

	"repro/internal/asyncmp"

	"repro/internal/core"
	"repro/internal/mobile"
	"repro/internal/protocols"
	"repro/internal/sim"
	"repro/internal/syncmp"
	"repro/internal/valence"
)

func TestRunnerFailureFree(t *testing.T) {
	const n, tt = 3, 1
	p := protocols.FloodSet{Rounds: tt + 1}
	m := syncmp.NewSt(p, n, tt)
	r := &sim.Runner{Model: m, MaxLayers: 5}
	out, err := r.Run(m.Initial([]int{1, 0, 1}), sim.FirstAction{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllDecided || !out.Agreement {
		t.Errorf("failure-free run: decided=%v agreement=%v", out.AllDecided, out.Agreement)
	}
	if out.DecisionLayer != tt+1 {
		t.Errorf("DecisionLayer = %d, want %d", out.DecisionLayer, tt+1)
	}
	for _, v := range out.Decided {
		if v != 0 {
			t.Errorf("decisions = %v, want all 0", out.Decided)
		}
	}
}

func TestRunnerCrashScheduler(t *testing.T) {
	const n, tt = 3, 1
	p := protocols.FloodSet{Rounds: tt + 1}
	m := syncmp.NewSt(p, n, tt)
	r := &sim.Runner{Model: m, MaxLayers: 5}
	// Process 0 omits to everyone in round 1; inputs (0,1,1): survivors
	// never see the 0 and decide 1.
	sched := &sim.Crash{Process: 0, AtLayer: 1, OmitTo: n}
	out, err := r.Run(m.Initial([]int{0, 1, 1}), sched)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Agreement {
		t.Error("agreement must hold among non-failed processes")
	}
	if out.Decided[1] != 1 || out.Decided[2] != 1 {
		t.Errorf("survivors decided %v, want 1", out.Decided)
	}
}

func TestRunnerScriptReplay(t *testing.T) {
	const n, tt = 3, 1
	p := protocols.FloodSet{Rounds: tt} // too fast: a violation exists
	m := syncmp.NewSt(p, n, tt)
	w, err := valence.Certify(m, tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind == valence.OK {
		t.Fatal("expected a violation witness")
	}
	r := &sim.Runner{Model: m, MaxLayers: len(w.Exec.Steps)}
	out, err := r.Run(w.Exec.Init, sim.NewScript(w.Exec.Actions()))
	if err != nil {
		t.Fatal(err)
	}
	if out.Agreement {
		t.Error("replaying the agreement-violation witness did not violate agreement")
	}
}

func TestRunnerAdversaryPostponesDecision(t *testing.T) {
	const n, rounds = 3, 3
	p := protocols.FloodSet{Rounds: rounds}
	m := mobile.New(p, n)
	o := valence.NewOracle(m)
	r := &sim.Runner{Model: m, MaxLayers: rounds - 1}
	adv := sim.NewAdversary(o, valence.DecreasingHorizon(rounds, 1))
	// Start from a bivalent initial state.
	var init core.State
	for _, x := range m.Inits() {
		if o.Bivalent(x, rounds) {
			init = x
			break
		}
	}
	if init == nil {
		t.Fatal("no bivalent initial state")
	}
	out, err := r.Run(init, adv)
	if err != nil {
		t.Fatal(err)
	}
	if out.AllDecided {
		t.Error("adversary failed to postpone decision within the pre-decision window")
	}
}

func TestRunManyStats(t *testing.T) {
	const n, tt = 3, 1
	p := protocols.FloodSet{Rounds: tt + 1}
	m := syncmp.NewSt(p, n, tt)
	r := &sim.Runner{Model: m, MaxLayers: tt + 1}
	st, err := r.RunMany(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 3*(1<<n) {
		t.Errorf("Runs = %d, want %d", st.Runs, 3*(1<<n))
	}
	if st.Violations != 0 {
		t.Errorf("violations = %d, want 0 (FloodSet t+1 is correct)", st.Violations)
	}
	if st.Decided != st.Runs {
		t.Errorf("decided = %d of %d, want all", st.Decided, st.Runs)
	}
}

func TestClusterMatchesModel(t *testing.T) {
	const n, tt = 3, 1
	p := protocols.FloodSet{Rounds: tt + 1}
	inputs := []int{1, 0, 1}

	// Run the goroutine cluster failure-free.
	c := sim.NewCluster(p, inputs)
	defer c.Close()
	decisions, err := c.RunRounds(tt+1, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Run the state-space model on the same schedule.
	m := syncmp.NewSt(p, n, tt)
	x := m.Initial(inputs)
	for r := 0; r < tt+1; r++ {
		x = syncmp.ApplyAction(p, x, 0, 0, true, true)
	}
	for i := 0; i < n; i++ {
		v, ok := x.Decided(i)
		if !ok || decisions[i] != v {
			t.Errorf("process %d: cluster=%d model=(%d,%v)", i, decisions[i], v, ok)
		}
	}
	// Local states must agree too.
	states, err := c.States()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if states[i] != x.Local(i) {
			t.Errorf("process %d local state: cluster %q != model %q", i, states[i], x.Local(i))
		}
	}
}

func TestClusterDropRule(t *testing.T) {
	const n, tt = 3, 1
	p := protocols.FloodSet{Rounds: tt + 1}
	c := sim.NewCluster(p, []int{0, 1, 1})
	defer c.Close()
	// Process 0 fails in round 1 and — as in the Section 6 environment —
	// stays silenced in every later round.
	drop := func(round, from, to int) bool { return from == 0 }
	decisions, err := c.RunRounds(tt+1, drop)
	if err != nil {
		t.Fatal(err)
	}
	if decisions[1] != 1 || decisions[2] != 1 {
		t.Errorf("survivors decided %v, want 1", decisions)
	}
}

func TestClusterCloseIdempotentAndSafe(t *testing.T) {
	p := protocols.FloodSet{Rounds: 2}
	c := sim.NewCluster(p, []int{0, 1})
	c.Close()
	c.Close() // idempotent
	if _, err := c.Step(nil); err == nil {
		t.Error("Step after Close must fail")
	}
	if _, err := c.States(); err == nil {
		t.Error("States after Close must fail")
	}
	if !strings.Contains(c.String(), "floodset") {
		t.Errorf("String() = %q", c.String())
	}
}

func TestStarveScheduler(t *testing.T) {
	const n, phases = 3, 2
	m := asyncmp.New(protocols.MPFlood{Phases: phases}, n)
	r := &sim.Runner{Model: m, MaxLayers: 4}
	out, err := r.Run(m.Initial([]int{0, 1, 1}), sim.Starve{Process: 0})
	if err != nil {
		t.Fatal(err)
	}
	// The starved process never takes a phase: undecided forever.
	if out.Decided[0] != core.Undecided {
		t.Errorf("starved process decided %d", out.Decided[0])
	}
	// The others completed their phases and decided.
	for _, i := range []int{1, 2} {
		if out.Decided[i] == core.Undecided {
			t.Errorf("non-starved process %d undecided after %d layers", i, out.Layers)
		}
	}
	// Every chosen action excluded process 0.
	for _, a := range out.Exec.Actions() {
		if strings.Contains(a, "0") {
			t.Errorf("starver chose action %q mentioning process 0", a)
		}
	}
}

func TestStarveStopsWhenImpossible(t *testing.T) {
	// The synchronous S^t model has no process-free actions ("noop"
	// involves everyone sending); every action label lacking the digit
	// still schedules the process, but Starve only inspects labels — in
	// syncmp the noop label has no digits, so Starve picks it forever;
	// the semantics still runs everyone. This documents that Starve is
	// only meaningful for permutation-layered models.
	m := syncmp.NewSt(protocols.FloodSet{Rounds: 2}, 3, 1)
	r := &sim.Runner{Model: m, MaxLayers: 3}
	out, err := r.Run(m.Initial([]int{0, 1, 1}), sim.Starve{Process: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Decided[0] == core.Undecided {
		t.Error("in the synchronous model the 'starved' process still runs and decides")
	}
}

func TestSchedulerNamesAndEdges(t *testing.T) {
	names := []string{
		sim.NewRandom(1).Name(),
		sim.NewScript(nil).Name(),
		sim.FirstAction{}.Name(),
		(&sim.Crash{Process: 1, AtLayer: 2, OmitTo: 3}).Name(),
		sim.Starve{Process: 0}.Name(),
	}
	for _, n := range names {
		if n == "" {
			t.Error("unnamed scheduler")
		}
	}
	// Edge cases: empty successor lists stop every scheduler.
	if _, ok := sim.NewRandom(1).Next(nil, nil); ok {
		t.Error("random scheduler continued with no successors")
	}
	if _, ok := (sim.FirstAction{}).Next(nil, nil); ok {
		t.Error("first-action scheduler continued with no successors")
	}
	// Script: exhaustion and mismatch.
	s := sim.NewScript([]string{"a"})
	if s.Remaining() != 1 {
		t.Errorf("Remaining = %d", s.Remaining())
	}
	if _, ok := s.Next(nil, []core.Succ{{Action: "b"}}); ok {
		t.Error("script matched a wrong action")
	}
	if _, ok := s.Next(nil, []core.Succ{{Action: "a"}}); !ok {
		t.Error("script refused its own action")
	}
	if _, ok := s.Next(nil, []core.Succ{{Action: "a"}}); ok {
		t.Error("exhausted script continued")
	}
	// Cluster round counter.
	p := protocols.FloodSet{Rounds: 2}
	c := sim.NewCluster(p, []int{0, 1})
	defer c.Close()
	if c.Round() != 0 {
		t.Errorf("Round = %d before any step", c.Round())
	}
	if _, err := c.Step(nil); err != nil {
		t.Fatal(err)
	}
	if c.Round() != 1 {
		t.Errorf("Round = %d after one step", c.Round())
	}
}
