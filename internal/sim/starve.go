package sim

import (
	"strconv"

	"repro/internal/core"
)

// Starve is the canonical 1-resilient adversary for the permutation-
// layered models: at every layer it picks an action that excludes the
// target process (a drop-one sequence without it), so the target never
// takes a local phase. All other processes run forever — exactly the
// fairness boundary the asynchronous models allow.
type Starve struct {
	// Process is the process to starve.
	Process int
}

var _ Scheduler = Starve{}

// Name implements Scheduler.
func (s Starve) Name() string { return "starve(" + strconv.Itoa(s.Process) + ")" }

// Next implements Scheduler: choose the first action whose label does not
// mention the target process; stop if none exists (the model does not
// support starvation).
func (s Starve) Next(_ core.State, succs []core.Succ) (int, bool) {
	needle := strconv.Itoa(s.Process)
	for i, succ := range succs {
		if !actionMentions(succ.Action, needle) {
			return i, true
		}
	}
	return 0, false
}

// actionMentions reports whether the action label contains the process id
// as a standalone token (ids are single- or multi-digit decimal numbers
// separated by punctuation in every model's labels).
func actionMentions(action, id string) bool {
	start := -1
	for i := 0; i <= len(action); i++ {
		isDigit := i < len(action) && action[i] >= '0' && action[i] <= '9'
		if isDigit {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			if action[start:i] == id {
				return true
			}
			start = -1
		}
	}
	return false
}
