package proto

// SyncProtocol is a deterministic process protocol for the round-based
// synchronous message-passing models (the t-resilient synchronous model of
// Section 6 and the mobile-failure model M^mf of Section 5).
//
// In each round every process first emits one message per destination
// (Send), the environment decides which messages to drop, and then every
// process consumes the vector of messages that actually arrived (Deliver).
// Local states are canonical strings (see the package comment).
type SyncProtocol interface {
	// Name identifies the protocol.
	Name() string

	// Init returns process id's initial local state given the system size n
	// and the process's input value.
	Init(n, id, input int) string

	// Send returns the messages the process sends this round: out[j] is the
	// message to process j, with "" meaning no message. len(out) must be n.
	// A process never sends to itself (out[id] is ignored).
	Send(state string) []string

	// Deliver consumes the messages received this round (in[j] is the
	// message from process j, "" if none arrived) and returns the next
	// local state.
	Deliver(state string, in []string) string

	// Decide reports the write-once decision variable of the local state:
	// the decided value and true, or (_, false) if undecided. Once a state
	// reports a decision, every Deliver-successor of it must report the
	// same decision.
	Decide(state string) (int, bool)
}

// SMProtocol is a deterministic process protocol for the asynchronous
// single-writer/multi-reader shared-memory model M^rw.
//
// A local phase (the paper's unit of progress) is: at most one write into
// the process's own register V_id, followed by a maximal sequence of reads
// covering every register once. WriteValue produces the value written at the
// start of the phase (or "" to skip the write); Observe consumes the scanned
// register contents and produces the next local state.
type SMProtocol interface {
	// Name identifies the protocol.
	Name() string

	// Init returns process id's initial local state.
	Init(n, id, input int) string

	// WriteValue returns the value the process writes into its register at
	// the start of its local phase, or "" to skip the write.
	WriteValue(state string) string

	// Observe consumes the register values read during the phase (regs[j]
	// is the content of V_j at the moment it was read) and returns the next
	// local state.
	Observe(state string, regs []string) string

	// Decide reports the write-once decision variable of the local state.
	Decide(state string) (int, bool)
}

// MPProtocol is a deterministic process protocol for the asynchronous
// message-passing model with the paper's local phases: first all outstanding
// messages sent to the process are delivered, then the process sends at most
// one message to each distinct destination.
type MPProtocol interface {
	// Name identifies the protocol.
	Name() string

	// Init returns process id's initial local state.
	Init(n, id, input int) string

	// Receive consumes all outstanding messages delivered in this local
	// phase: in[j] is the FIFO sequence of messages from sender j, oldest
	// first. It returns the next local state.
	Receive(state string, in [][]string) string

	// Send returns the messages emitted at the end of the local phase:
	// out[j] is the message to process j, "" meaning none. len(out) must be
	// n; out[id] is ignored.
	Send(state string) []string

	// Decide reports the write-once decision variable of the local state.
	Decide(state string) (int, bool)
}

// Decider is the common decision-reporting subset of the protocol
// interfaces; the analysis engine only needs this plus the model semantics.
type Decider interface {
	Decide(state string) (int, bool)
}
