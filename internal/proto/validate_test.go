package proto_test

import (
	"strings"
	"testing"

	"repro/internal/proto"
	"repro/internal/protocols"
)

func TestValidateSyncCleanProtocols(t *testing.T) {
	clean := []proto.SyncProtocol{
		protocols.FloodSet{Rounds: 2},
		protocols.EIG{Rounds: 2},
		protocols.FullInfo{},
		protocols.EarlyFloodSet{MaxRounds: 2},
		protocols.ConstantDecider{Value: 0}, // invalid w.r.t. consensus, but contract-clean
	}
	for _, p := range clean {
		if vs := proto.ValidateSync(p, 3, 3); len(vs) != 0 {
			t.Errorf("%s: %d violations, first: %v", p.Name(), len(vs), vs[0])
		}
	}
}

func TestValidateSyncCatchesWriteOnce(t *testing.T) {
	vs := proto.ValidateSync(protocols.FlickerDecider{}, 3, 3)
	if len(vs) == 0 {
		t.Fatal("flicker protocol passed validation")
	}
	found := false
	for _, v := range vs {
		if v.Rule == "write-once" {
			found = true
			if !strings.Contains(v.String(), "write-once") {
				t.Errorf("String() = %q", v.String())
			}
		}
	}
	if !found {
		t.Errorf("no write-once violation among %d findings", len(vs))
	}
}

func TestValidateSyncCatchesShortSendVector(t *testing.T) {
	vs := proto.ValidateSync(shortSender{}, 3, 1)
	found := false
	for _, v := range vs {
		if v.Rule == "send-length" {
			found = true
		}
	}
	if !found {
		t.Errorf("short send vector not flagged: %v", vs)
	}
}

// shortSender returns a 1-element send vector for a 3-process system.
type shortSender struct{}

func (shortSender) Name() string                        { return "short" }
func (shortSender) Init(n, id, input int) string        { return "s" }
func (shortSender) Send(string) []string                { return []string{"x"} }
func (shortSender) Deliver(s string, _ []string) string { return s }
func (shortSender) Decide(string) (int, bool)           { return 0, false }

func TestValidateSMCleanAndDirty(t *testing.T) {
	if vs := proto.ValidateSM(protocols.SMVote{Phases: 2}, 3, 3); len(vs) != 0 {
		t.Errorf("SMVote: %v", vs)
	}
	if vs := proto.ValidateSM(protocols.SMFullInfo{}, 3, 2); len(vs) != 0 {
		t.Errorf("SMFullInfo: %v", vs)
	}
	if vs := proto.ValidateSM(flickerSM{}, 2, 3); len(vs) == 0 {
		t.Error("flickering SM protocol passed validation")
	}
}

// flickerSM decides its phase parity — not write-once.
type flickerSM struct{}

func (flickerSM) Name() string                 { return "flickersm" }
func (flickerSM) Init(n, id, input int) string { return "0" }
func (flickerSM) WriteValue(string) string     { return "w" }
func (flickerSM) Observe(s string, _ []string) string {
	return s + "x"
}
func (flickerSM) Decide(s string) (int, bool) { return len(s) % 2, true }
