package proto

import (
	"fmt"
)

// Violation describes one conformance problem found by a validator.
type Violation struct {
	// Rule names the violated requirement.
	Rule string
	// Detail describes the concrete instance.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// ValidateSync checks a synchronous protocol's contract on small vectors
// so authors catch breakage before handing the protocol to the analysis
// engine:
//
//   - Init determinism: equal (n, id, input) give equal states;
//   - Send/Deliver determinism and purity (same inputs, same outputs);
//   - Send vector length covers all destinations;
//   - write-once decisions along failure-free rounds;
//   - decision stability: once decided, Deliver preserves the value.
//
// It runs the protocol for `rounds` failure-free rounds on every binary
// input assignment for n processes and returns all violations found.
func ValidateSync(p SyncProtocol, n, rounds int) []Violation {
	var out []Violation
	report := func(rule, format string, args ...any) {
		out = append(out, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}
	for a := 0; a < 1<<uint(n); a++ {
		locals := make([]string, n)
		for i := 0; i < n; i++ {
			input := (a >> uint(i)) & 1
			locals[i] = p.Init(n, i, input)
			if again := p.Init(n, i, input); again != locals[i] {
				report("init-determinism", "Init(%d,%d,%d) differs across calls", n, i, input)
			}
		}
		decided := make([]int, n)
		for i := range decided {
			decided[i] = -1
			if v, ok := p.Decide(locals[i]); ok {
				decided[i] = v
			}
		}
		for r := 0; r < rounds; r++ {
			sends := make([][]string, n)
			for i, l := range locals {
				sends[i] = p.Send(l)
				if again := p.Send(l); !equalStrings(again, sends[i]) {
					report("send-determinism", "inputs %0*b round %d process %d", n, a, r, i)
				}
				if len(sends[i]) < n {
					report("send-length", "inputs %0*b round %d process %d: %d < n=%d",
						n, a, r, i, len(sends[i]), n)
				}
			}
			next := make([]string, n)
			for j := 0; j < n; j++ {
				in := make([]string, n)
				for i := 0; i < n; i++ {
					if i != j && j < len(sends[i]) {
						in[i] = sends[i][j]
					}
				}
				next[j] = p.Deliver(locals[j], in)
				if again := p.Deliver(locals[j], in); again != next[j] {
					report("deliver-determinism", "inputs %0*b round %d process %d", n, a, r, j)
				}
				v, ok := p.Decide(next[j])
				switch {
				case decided[j] >= 0 && (!ok || v != decided[j]):
					report("write-once", "inputs %0*b round %d process %d: %d then (%d,%v)",
						n, a, r, j, decided[j], v, ok)
				case decided[j] < 0 && ok:
					decided[j] = v
				}
			}
			locals = next
		}
	}
	return out
}

// ValidateSM is ValidateSync's analogue for shared-memory protocols: it
// runs `phases` all-write-then-all-read rounds on every binary input
// assignment.
func ValidateSM(p SMProtocol, n, phases int) []Violation {
	var out []Violation
	report := func(rule, format string, args ...any) {
		out = append(out, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}
	for a := 0; a < 1<<uint(n); a++ {
		locals := make([]string, n)
		regs := make([]string, n)
		for i := 0; i < n; i++ {
			locals[i] = p.Init(n, i, (a>>uint(i))&1)
		}
		decided := make([]int, n)
		for i := range decided {
			decided[i] = -1
		}
		for r := 0; r < phases; r++ {
			for i, l := range locals {
				v := p.WriteValue(l)
				if again := p.WriteValue(l); again != v {
					report("write-determinism", "inputs %0*b phase %d process %d", n, a, r, i)
				}
				if v != "" {
					regs[i] = v
				}
			}
			for i, l := range locals {
				locals[i] = p.Observe(l, regs)
				if again := p.Observe(l, regs); again != locals[i] {
					report("observe-determinism", "inputs %0*b phase %d process %d", n, a, r, i)
				}
				v, ok := p.Decide(locals[i])
				switch {
				case decided[i] >= 0 && (!ok || v != decided[i]):
					report("write-once", "inputs %0*b phase %d process %d", n, a, r, i)
				case decided[i] < 0 && ok:
					decided[i] = v
				}
			}
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
