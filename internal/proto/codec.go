// Package proto defines the protocol interfaces for the three model families
// the paper analyzes (synchronous message passing, asynchronous read/write
// shared memory, asynchronous message passing), together with a small
// canonical string codec.
//
// Local protocol states are canonical strings: two logical states are equal
// exactly if their encodings are equal. This makes any protocol's states
// directly usable as the paper's local states L_i — the framework observes
// them only through equality, decisions, and the model's transition rules.
package proto

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ErrBadEncoding is returned by decoding helpers when the input is not a
// valid canonical encoding.
var ErrBadEncoding = errors.New("proto: bad encoding")

// Join encodes a sequence of fields into one unambiguous canonical string
// using length prefixes. Join is injective: distinct field sequences yield
// distinct strings, regardless of field contents.
func Join(fields ...string) string {
	var b strings.Builder
	size := 0
	for _, f := range fields {
		size += len(f) + 8
	}
	b.Grow(size)
	for _, f := range fields {
		b.WriteString(strconv.Itoa(len(f)))
		b.WriteByte(':')
		b.WriteString(f)
	}
	return b.String()
}

// Split decodes a string produced by Join back into its fields.
func Split(s string) ([]string, error) {
	var fields []string
	for len(s) > 0 {
		colon := strings.IndexByte(s, ':')
		if colon < 0 {
			return nil, fmt.Errorf("missing length prefix in %q: %w", s, ErrBadEncoding)
		}
		n, err := strconv.Atoi(s[:colon])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad length prefix in %q: %w", s, ErrBadEncoding)
		}
		s = s[colon+1:]
		if len(s) < n {
			return nil, fmt.Errorf("truncated field in %q: %w", s, ErrBadEncoding)
		}
		fields = append(fields, s[:n])
		s = s[n:]
	}
	return fields, nil
}

// JoinInts encodes a sequence of integers canonically (order-preserving).
func JoinInts(xs ...int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// SplitInts decodes a JoinInts encoding.
func SplitInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		x, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad int %q: %w", p, ErrBadEncoding)
		}
		out[i] = x
	}
	return out, nil
}

// EncodeIntSet encodes a set of integers canonically: sorted ascending with
// duplicates removed.
func EncodeIntSet(xs []int) string {
	if len(xs) == 0 {
		return ""
	}
	sorted := make([]int, len(xs))
	copy(sorted, xs)
	sort.Ints(sorted)
	uniq := sorted[:1]
	for _, x := range sorted[1:] {
		if x != uniq[len(uniq)-1] {
			uniq = append(uniq, x)
		}
	}
	return JoinInts(uniq...)
}

// DecodeIntSet decodes an EncodeIntSet encoding into a sorted slice.
func DecodeIntSet(s string) ([]int, error) { return SplitInts(s) }
