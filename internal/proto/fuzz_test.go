package proto

import (
	"reflect"
	"testing"
)

// FuzzSplit: Split never panics and, where it succeeds, Join(Split(s))
// round-trips back to a canonical encoding of the same fields.
func FuzzSplit(f *testing.F) {
	f.Add("")
	f.Add("3:abc")
	f.Add("0:")
	f.Add("3:ab")         // truncated
	f.Add("x:abc")        // bad prefix
	f.Add("1:a2:bc3:def") // multi-field
	f.Add("10:short")     // length overrun
	f.Add(":::")          // pathological
	f.Fuzz(func(t *testing.T, s string) {
		fields, err := Split(s)
		if err != nil {
			return
		}
		again, err := Split(Join(fields...))
		if err != nil {
			t.Fatalf("re-split of canonical encoding failed: %v", err)
		}
		if len(fields) == 0 && len(again) == 0 {
			return
		}
		if !reflect.DeepEqual(fields, again) {
			t.Fatalf("round trip changed fields: %q -> %q", fields, again)
		}
	})
}

// FuzzDecodeIntSet: DecodeIntSet never panics; successful decodes re-encode
// to a stable canonical form.
func FuzzDecodeIntSet(f *testing.F) {
	f.Add("")
	f.Add("1,2,3")
	f.Add("-5,0,7")
	f.Add("not,numbers")
	f.Add("1,,2")
	f.Fuzz(func(t *testing.T, s string) {
		xs, err := DecodeIntSet(s)
		if err != nil {
			return
		}
		enc := EncodeIntSet(xs)
		again, err := DecodeIntSet(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if EncodeIntSet(again) != enc {
			t.Fatalf("canonical form unstable: %q vs %q", enc, EncodeIntSet(again))
		}
	})
}
