package proto

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestJoinSplitRoundTrip(t *testing.T) {
	cases := [][]string{
		nil,
		{""},
		{"", ""},
		{"a"},
		{"a", "b", "c"},
		{"with:colon", "with|pipe", "3:tricky"},
		{"éüñ", strings.Repeat("x", 1000)},
	}
	for _, fields := range cases {
		got, err := Split(Join(fields...))
		if err != nil {
			t.Fatalf("Split(Join(%q)): %v", fields, err)
		}
		if len(fields) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, fields) {
			t.Errorf("round trip %q: got %q", fields, got)
		}
	}
}

func TestJoinSplitProperty(t *testing.T) {
	f := func(fields []string) bool {
		got, err := Split(Join(fields...))
		if err != nil {
			return false
		}
		if len(fields) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, fields)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinInjectiveProperty(t *testing.T) {
	f := func(a, b []string) bool {
		if reflect.DeepEqual(a, b) {
			return true
		}
		return Join(a...) != Join(b...)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitRejectsMalformed(t *testing.T) {
	bad := []string{"x", "3:ab", "-1:", "9999999999999999999999:a", ":abc"}
	for _, s := range bad {
		if _, err := Split(s); err == nil {
			t.Errorf("Split(%q): want error", s)
		}
	}
}

func TestEncodeIntSet(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, ""},
		{[]int{5}, "5"},
		{[]int{3, 1, 2}, "1,2,3"},
		{[]int{2, 2, 2}, "2"},
		{[]int{-1, 0, -1, 7}, "-1,0,7"},
	}
	for _, c := range cases {
		if got := EncodeIntSet(c.in); got != c.want {
			t.Errorf("EncodeIntSet(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEncodeIntSetCanonicalProperty(t *testing.T) {
	// The encoding must be order- and multiplicity-insensitive.
	f := func(xs []int, seed uint8) bool {
		shuffled := append([]int(nil), xs...)
		// Deterministic pseudo-shuffle driven by seed.
		for i := range shuffled {
			j := (i*31 + int(seed)) % (i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		doubled := append(append([]int(nil), xs...), xs...)
		return EncodeIntSet(xs) == EncodeIntSet(shuffled) &&
			EncodeIntSet(xs) == EncodeIntSet(doubled)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntSetRoundTripProperty(t *testing.T) {
	f := func(xs []int) bool {
		dec, err := DecodeIntSet(EncodeIntSet(xs))
		if err != nil {
			return false
		}
		// dec must be the sorted deduplication of xs.
		seen := make(map[int]bool, len(xs))
		for _, x := range xs {
			seen[x] = true
		}
		if len(dec) != len(seen) {
			return false
		}
		for i, x := range dec {
			if !seen[x] {
				return false
			}
			if i > 0 && dec[i-1] >= x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinIntsRoundTrip(t *testing.T) {
	f := func(xs []int) bool {
		got, err := SplitInts(JoinInts(xs...))
		if err != nil {
			return false
		}
		if len(xs) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
