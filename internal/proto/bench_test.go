package proto

import (
	"strings"
	"testing"
)

func BenchmarkJoin(b *testing.B) {
	fields := []string{"r12", strings.Repeat("x", 64), strings.Repeat("y", 64), "0,1,4,9"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Join(fields...)
	}
}

func BenchmarkSplit(b *testing.B) {
	s := Join("r12", strings.Repeat("x", 64), strings.Repeat("y", 64), "0,1,4,9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Split(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeIntSet(b *testing.B) {
	xs := []int{9, 3, 3, 7, 1, 0, 4, 4, 2, 8, 6, 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeIntSet(xs)
	}
}
