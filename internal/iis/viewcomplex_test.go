package iis_test

import (
	"testing"

	"repro/internal/iis"
	"repro/internal/protocols"
)

// TestViewComplexIsChromaticSubdivision checks the one-round full-
// information view complex against the known combinatorics of the standard
// chromatic subdivision of the triangle (n=3): 13 top simplexes, a
// pseudomanifold, 1-thick connected.
func TestViewComplexIsChromaticSubdivision(t *testing.T) {
	const n = 3
	m := iis.New(protocols.SMFullInfo{}, n)
	x := m.Initial([]int{0, 1, 1})
	st := m.Stats(x)
	if st.TopSimplexes != 13 {
		t.Errorf("top simplexes = %d, want 13 (Fubini(3))", st.TopSimplexes)
	}
	if !st.ThickConnected {
		t.Error("subdivision not 1-thick connected")
	}
	if !st.Pseudomanifold {
		t.Error("subdivision not a pseudomanifold")
	}
	// Per-process view counts: each process has 4 distinct views at n=3
	// (sees itself only; itself + one of the two others; everyone as part
	// of a pair-block or after everyone — wait, those coincide; the count
	// is data, assert the measured total instead).
	if st.Vertices != 12 {
		t.Errorf("vertices = %d, want 12 (4 views per process)", st.Vertices)
	}
}

// TestViewComplexN2: the chromatic subdivision of an edge: 3 edges, 6
// vertices... per process: sees-self, sees-both = 2 views each, 4 vertices
// and 3 top simplexes.
func TestViewComplexN2(t *testing.T) {
	const n = 2
	m := iis.New(protocols.SMFullInfo{}, n)
	x := m.Initial([]int{0, 1})
	st := m.Stats(x)
	if st.TopSimplexes != 3 {
		t.Errorf("top simplexes = %d, want 3", st.TopSimplexes)
	}
	if st.Vertices != 4 {
		t.Errorf("vertices = %d, want 4", st.Vertices)
	}
	if !st.ThickConnected || !st.Pseudomanifold {
		t.Error("edge subdivision structure wrong")
	}
}

// TestViewComplexDecode: the decode map recovers genuine view strings.
func TestViewComplexDecode(t *testing.T) {
	const n = 2
	m := iis.New(protocols.SMFullInfo{}, n)
	x := m.Initial([]int{0, 1})
	c, decode := m.ViewComplex(x)
	for _, v := range c.Simplexes(1) {
		vert := v.Vertices()[0]
		view, ok := decode[[2]int{vert.ID, vert.Value}]
		if !ok || view == "" {
			t.Errorf("vertex (%d,%d) has no decoded view", vert.ID, vert.Value)
		}
	}
}

// TestIteratedSubdivision: two IIS rounds give the twice-iterated
// chromatic subdivision — 13^2 = 169 distinct full-information outcomes at
// n=3, each one-round layer of a one-round state again having 13 views.
func TestIteratedSubdivision(t *testing.T) {
	const n = 3
	m := iis.New(protocols.SMFullInfo{}, n)
	x := m.Initial([]int{0, 1, 1})
	round1 := make(map[string]*iis.State)
	for _, part := range iis.OrderedPartitions(n) {
		y := m.Apply(x, part)
		round1[y.Key()] = y
	}
	if len(round1) != 13 {
		t.Fatalf("round-1 outcomes = %d, want 13", len(round1))
	}
	round2 := make(map[string]bool)
	for _, y := range round1 {
		st := m.Stats(y)
		if st.TopSimplexes != 13 {
			t.Errorf("round-2 layer of a round-1 state has %d top simplexes, want 13", st.TopSimplexes)
		}
		for _, part := range iis.OrderedPartitions(n) {
			round2[m.Apply(y, part).Key()] = true
		}
	}
	if len(round2) != 13*13 {
		t.Errorf("round-2 outcomes = %d, want %d", len(round2), 13*13)
	}
}
