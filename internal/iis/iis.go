// Package iis implements the iterated immediate snapshot model (Borowsky &
// Gafni), the wait-free model the paper's permutation layering is inspired
// by and one of the extension models Corollary 7.3 mentions.
//
// In round r all processes access a fresh one-shot immediate-snapshot
// memory M_r. The environment's action is an ordered partition
// (B_1,...,B_m) of the processes into non-empty blocks: the blocks execute
// in order, and within a block all members first write (their protocol's
// WriteValue) and then all members snapshot the memory — so a process sees
// the writes of its own block and of all earlier blocks, and the one-round
// views form the standard chromatic subdivision of the simplex.
//
// Because each round's memory is never read again, the global state needs
// no environment component beyond the round number: the locals carry
// everything. Processes reuse the shared-memory protocol interface
// (proto.SMProtocol); Observe receives the visible snapshot with ""
// marking cells the process did not see.
package iis

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/proto"
)

// State is a global state of the IIS model. Immutable after construction.
type State struct {
	n       int
	round   int
	locals  []string
	decided []int
	inputs  []int
	key     string
	envKey  string
}

var (
	_ core.State = (*State)(nil)
	_ core.Input = (*State)(nil)
)

// NewState assembles an immutable IIS state.
func NewState(p proto.Decider, round int, locals []string, inputs []int) *State {
	n := len(locals)
	s := &State{
		n:       n,
		round:   round,
		locals:  append([]string(nil), locals...),
		decided: make([]int, n),
		inputs:  append([]int(nil), inputs...),
		envKey:  proto.Join("r" + strconv.Itoa(round)),
	}
	for i, l := range locals {
		if v, ok := p.Decide(l); ok {
			s.decided[i] = v
		} else {
			s.decided[i] = core.Undecided
		}
	}
	fields := make([]string, 0, n+1)
	fields = append(fields, s.envKey)
	fields = append(fields, s.locals...)
	s.key = proto.Join(fields...)
	return s
}

// N implements core.State.
func (s *State) N() int { return s.n }

// Key implements core.State.
func (s *State) Key() string { return s.key }

// AppendKey implements core.KeyAppender: the key is precomputed at
// construction, so the fast path is a copy of the cached bytes.
//lint:hotpath
func (s *State) AppendKey(dst []byte) []byte { return append(dst, s.key...) }

// EnvKey implements core.State.
func (s *State) EnvKey() string { return s.envKey }

// Local implements core.State.
func (s *State) Local(i int) string { return s.locals[i] }

// Decided implements core.State.
func (s *State) Decided(i int) (int, bool) {
	if s.decided[i] == core.Undecided {
		return core.Undecided, false
	}
	return s.decided[i], true
}

// FailedAt implements core.State: IIS is wait-free; nobody is ever failed
// at a state.
func (s *State) FailedAt(int) bool { return false }

// InputOf implements core.Input.
func (s *State) InputOf(i int) int { return s.inputs[i] }

// Round returns the number of completed IIS rounds.
func (s *State) Round() int { return s.round }

// Model is the IIS model; every layer is one one-shot immediate-snapshot
// round, one successor per ordered partition. It implements core.Model.
// Successor enumeration is memoized in an embedded per-model cache shared
// by every analysis pass over the same model value.
type Model struct {
	*core.SuccessorCache
	p          proto.SMProtocol
	n          int
	name       string
	partitions [][][]int
	inits      core.InitMemo
}

var _ core.Model = (*Model)(nil)

// New returns the IIS model for protocol p on n processes.
func New(p proto.SMProtocol, n int) *Model {
	m := &Model{
		p:          p,
		n:          n,
		name:       fmt.Sprintf("iis(n=%d,%s)", n, p.Name()),
		partitions: OrderedPartitions(n),
	}
	m.SuccessorCache = core.NewSuccessorCache(core.SuccessorFunc(m.successors))
	return m
}

// Name implements core.Model.
func (m *Model) Name() string { return m.name }

// Protocol returns the protocol the model runs.
func (m *Model) Protocol() proto.SMProtocol { return m.p }

// N returns the number of processes.
func (m *Model) N() int { return m.n }

// Inits implements core.Model: Con_0 in binary counting order.
func (m *Model) Inits() []core.State {
	return m.inits.Get(func() []core.State {
		out := make([]core.State, 0, 1<<uint(m.n))
		for a := 0; a < 1<<uint(m.n); a++ {
			inputs := make([]int, m.n)
			for i := 0; i < m.n; i++ {
				inputs[i] = (a >> uint(i)) & 1
			}
			out = append(out, m.Initial(inputs))
		}
		return out
	})
}

// Initial builds the initial state for an explicit input assignment.
func (m *Model) Initial(inputs []int) *State {
	locals := make([]string, m.n)
	for i := range locals {
		locals[i] = m.p.Init(m.n, i, inputs[i])
	}
	return NewState(m.p, 0, locals, inputs)
}

// Apply executes one IIS round under the ordered partition.
func (m *Model) Apply(x *State, partition [][]int) *State {
	mem := make([]string, m.n) // this round's fresh memory
	locals := append([]string(nil), x.locals...)
	written := make([]bool, m.n)
	for _, block := range partition {
		// All block members write...
		for _, i := range block {
			if v := m.p.WriteValue(x.locals[i]); v != "" {
				mem[i] = v
			}
			written[i] = true
		}
		// ...then all block members snapshot what is visible so far.
		snapshot := make([]string, m.n)
		for j := 0; j < m.n; j++ {
			if written[j] {
				snapshot[j] = mem[j]
			}
		}
		for _, i := range block {
			locals[i] = m.p.Observe(x.locals[i], snapshot)
		}
	}
	return NewState(m.p, x.round+1, locals, x.inputs)
}

// successors enumerates one successor per ordered partition; the embedded
// cache serves Successors.
func (m *Model) successors(x core.State) []core.Succ {
	s, ok := x.(*State)
	if !ok {
		return nil
	}
	out := make([]core.Succ, 0, len(m.partitions))
	for _, part := range m.partitions {
		out = append(out, core.Succ{
			Action: PartitionLabel(part),
			State:  m.Apply(s, part),
		})
	}
	return out
}

// PartitionLabel formats an ordered partition, e.g. "[{0,1},{2}]".
func PartitionLabel(partition [][]int) string {
	var b strings.Builder
	b.WriteByte('[')
	for bi, block := range partition {
		if bi > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('{')
		for i, p := range block {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(p))
		}
		b.WriteByte('}')
	}
	b.WriteByte(']')
	return b.String()
}

// OrderedPartitions enumerates all ordered partitions of {0..n-1} into
// non-empty blocks (Fubini enumeration), deterministically: blocks are
// internally sorted ascending, and partitions are emitted in recursive
// subset order.
func OrderedPartitions(n int) [][][]int {
	full := (1 << uint(n)) - 1
	var out [][][]int
	var rec func(remaining int, acc [][]int)
	rec = func(remaining int, acc [][]int) {
		if remaining == 0 {
			cp := make([][]int, len(acc))
			copy(cp, acc)
			out = append(out, cp)
			return
		}
		// Enumerate non-empty submasks of remaining as the next block.
		for sub := remaining; sub > 0; sub = (sub - 1) & remaining {
			block := maskToSlice(sub, n)
			rec(remaining&^sub, append(acc, block))
		}
	}
	rec(full, nil)
	return out
}

func maskToSlice(mask, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}
