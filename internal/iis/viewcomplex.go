package iis

import (
	"sort"

	"repro/internal/simplex"
)

// ViewComplex builds the protocol complex of one IIS round from state x:
// a vertex per (process, post-round local view), one n-simplex per ordered
// partition. For the full-information protocol this is the standard
// chromatic subdivision of the input simplex — the combinatorial object
// behind the topological treatments the paper relates its approach to.
//
// Since simplex vertices carry integer values, distinct view strings are
// dictionary-encoded per process; the returned map recovers the view string
// from (process, code).
func (m *Model) ViewComplex(x *State) (*simplex.Complex, map[[2]int]string) {
	type viewKey struct {
		p    int
		view string
	}
	codes := make(map[viewKey]int)
	decode := make(map[[2]int]string)
	perProcess := make([]int, m.n)
	code := func(p int, view string) int {
		k := viewKey{p: p, view: view}
		if c, ok := codes[k]; ok {
			return c
		}
		c := perProcess[p]
		perProcess[p]++
		codes[k] = c
		decode[[2]int{p, c}] = view
		return c
	}

	// Deterministic order: iterate partitions as enumerated.
	c := simplex.NewComplex()
	for _, part := range m.partitions {
		y := m.Apply(x, part)
		verts := make([]simplex.Vertex, m.n)
		for i := 0; i < m.n; i++ {
			verts[i] = simplex.Vertex{ID: i, Value: code(i, y.Local(i))}
		}
		s, err := simplex.New(verts...)
		if err != nil {
			continue // unreachable: ids are distinct by construction
		}
		c.Add(s)
	}
	return c, decode
}

// SubdivisionStats summarizes a one-round view complex.
type SubdivisionStats struct {
	// Vertices is the number of distinct (process, view) vertices.
	Vertices int
	// TopSimplexes is the number of n-size simplexes (= distinct one-round
	// outcomes; the Fubini number under full information).
	TopSimplexes int
	// ThickConnected reports 1-thick connectivity of the top simplexes.
	ThickConnected bool
	// Pseudomanifold reports that every (n-1)-face lies in at most two
	// top simplexes — the boundary structure of a subdivided simplex.
	Pseudomanifold bool
}

// Stats computes the subdivision summary of one IIS round from x.
func (m *Model) Stats(x *State) SubdivisionStats {
	c, _ := m.ViewComplex(x)
	st := SubdivisionStats{
		Vertices:       len(c.Simplexes(1)),
		TopSimplexes:   len(c.Simplexes(m.n)),
		ThickConnected: c.ThickConnected(m.n, 1),
		Pseudomanifold: true,
	}
	// Count top simplexes per (n-1)-face.
	faceCount := make(map[string]int)
	for _, top := range c.Simplexes(m.n) {
		for _, f := range top.Faces(m.n - 1) {
			faceCount[f.Key()]++
		}
	}
	keys := make([]string, 0, len(faceCount))
	for k := range faceCount {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if faceCount[k] > 2 {
			st.Pseudomanifold = false
			break
		}
	}
	return st
}
