package iis_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/iis"
	"repro/internal/protocols"
	"repro/internal/valence"
)

// fubini[n] is the number of ordered partitions of an n-set.
var fubini = map[int]int{1: 1, 2: 3, 3: 13, 4: 75}

func TestOrderedPartitionCount(t *testing.T) {
	for n, want := range fubini {
		if got := len(iis.OrderedPartitions(n)); got != want {
			t.Errorf("OrderedPartitions(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestOrderedPartitionsValid(t *testing.T) {
	const n = 3
	seen := make(map[string]bool)
	for _, p := range iis.OrderedPartitions(n) {
		label := iis.PartitionLabel(p)
		if seen[label] {
			t.Errorf("duplicate partition %s", label)
		}
		seen[label] = true
		covered := make(map[int]bool)
		for _, block := range p {
			if len(block) == 0 {
				t.Errorf("%s: empty block", label)
			}
			for _, i := range block {
				if covered[i] {
					t.Errorf("%s: process %d in two blocks", label, i)
				}
				covered[i] = true
			}
		}
		if len(covered) != n {
			t.Errorf("%s: covers %d of %d processes", label, len(covered), n)
		}
	}
}

// TestBlockVisibility pins down immediate-snapshot semantics: members of a
// block see each other and all earlier blocks; earlier blocks do not see
// later ones.
func TestBlockVisibility(t *testing.T) {
	const n = 3
	m := iis.New(protocols.SMFullInfo{}, n)
	x := m.Initial([]int{0, 1, 1})
	// Partition [{1},{0,2}]: 1 sees only itself; 0 and 2 see everyone.
	y := m.Apply(x, [][]int{{1}, {0, 2}})
	// Partition [{1},{0},{2}]: 1 itself; 0 sees {0,1}; 2 sees all.
	z := m.Apply(x, [][]int{{1}, {0}, {2}})
	if y.Local(1) != z.Local(1) {
		t.Error("process 1's view must not depend on later blocks")
	}
	if y.Local(0) == z.Local(0) {
		t.Error("process 0 must see process 2's write when they share a block")
	}
	if y.Local(2) != z.Local(2) {
		t.Error("process 2 sees everyone in both partitions")
	}
}

// TestOneRoundSubdivisionConnected is the standard chromatic-subdivision
// connectivity, through the paper's similarity lens: the one-round IIS
// layer is similarity connected (and has the Fubini number of distinct
// states under full information).
func TestOneRoundSubdivisionConnected(t *testing.T) {
	const n = 3
	m := iis.New(protocols.SMFullInfo{}, n)
	for _, x := range m.Inits() {
		states, _ := valence.Layer(m, x)
		if len(states) != fubini[n] {
			t.Errorf("distinct one-round states = %d, want %d", len(states), fubini[n])
		}
		g := valence.SimilarityGraph(states)
		if !g.Connected() {
			t.Error("one-round IIS layer not similarity connected")
		}
	}
}

// TestConsensusRefutedInIIS: consensus is wait-free unsolvable; the
// certifier must refute the flooding candidate in the IIS model too.
func TestConsensusRefutedInIIS(t *testing.T) {
	for _, phases := range []int{1, 2} {
		m := iis.New(protocols.SMVote{Phases: phases}, 3)
		w, err := valence.Certify(m, phases, 4_000_000)
		if err != nil {
			t.Fatalf("phases=%d: %v", phases, err)
		}
		if w.Kind == valence.OK {
			t.Errorf("phases=%d: consensus certified in IIS", phases)
		}
	}
}

// TestIISLayerValenceConnected: every IIS layer over the initial states is
// valence connected for SMVote within its horizon — the Lemma 4.1
// precondition in this model.
func TestIISLayerValenceConnected(t *testing.T) {
	const n, phases = 3, 2
	m := iis.New(protocols.SMVote{Phases: phases}, n)
	o := valence.NewOracle(m)
	for _, x := range m.Inits() {
		r := valence.AnalyzeLayer(m, o, x, phases)
		if !r.ValenceConnected {
			t.Errorf("init %q: IIS layer not valence connected", x.Key())
		}
	}
}

// TestBivalentChainIIS: the Theorem 4.2 chain runs in IIS as well.
func TestBivalentChainIIS(t *testing.T) {
	const n, phases = 3, 3
	m := iis.New(protocols.SMVote{Phases: phases}, n)
	o := valence.NewOracle(m)
	ch, err := valence.BivalentChain(m, o, valence.DecreasingHorizon(phases, 1), phases-1)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Stuck != nil || ch.Reached != phases-1 {
		t.Fatalf("chain reached %d of %d (stuck=%v)", ch.Reached, phases-1, ch.Stuck != nil)
	}
	for _, x := range ch.Exec.States() {
		for i := 0; i < n; i++ {
			if _, ok := x.Decided(i); ok {
				t.Error("decision at a bivalent state (Lemma 3.2; IIS displays no finite failure)")
			}
		}
	}
}

// TestNoEnvironmentBeyondRound: iterated memories are never re-read, so
// states with equal locals and rounds are equal outright.
func TestNoEnvironmentBeyondRound(t *testing.T) {
	const n = 3
	m := iis.New(protocols.SMVote{Phases: 2}, n)
	x := m.Initial([]int{0, 1, 1})
	a := m.Apply(x, [][]int{{0, 1, 2}})
	b := m.Apply(x, [][]int{{0, 1, 2}})
	if a.Key() != b.Key() {
		t.Error("identical applications differ")
	}
	var got core.State = a
	if got.EnvKey() != b.EnvKey() {
		t.Error("EnvKey differs")
	}
}

// TestTwoSetProtocolFailsWaitFree contrasts resilience regimes on the same
// task and protocol: one round of min-flooding solves 2-set agreement
// 1-resiliently (experiment E10, in M^mf), but in the wait-free IIS model
// an ordered partition can give three processes three nested views and
// hence three distinct minima — the protocol is refuted. (Task-level
// wait-free impossibility of 2-set agreement is the Herlihy–Shavit /
// Borowsky–Gafni / Saks–Zaharoglou theorem, beyond this paper's 1-resilient
// scope; here we measure the protocol-level failure.)
func TestTwoSetProtocolFailsWaitFree(t *testing.T) {
	const n = 3
	p := protocols.SMVote{Phases: 1}
	m := iis.New(p, n)
	// Ternary inputs decreasing by id: under the nested-view partition
	// [{0},{1},{2}], process 0 sees only its 2, process 1 sees {1,2}, and
	// process 2 sees everything — minima 2, 1, 0.
	x := m.Initial([]int{2, 1, 0})
	y := m.Apply(x, [][]int{{0}, {1}, {2}})
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		v, ok := y.Decided(i)
		if !ok {
			t.Fatalf("process %d undecided after its phase", i)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Errorf("distinct decisions = %d, want 3 (the 2-set violation)", len(seen))
	}
}
