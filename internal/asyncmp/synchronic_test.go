package asyncmp_test

import (
	"testing"

	"repro/internal/asyncmp"
	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/valence"
)

// TestSynchronicSimilarityChainMP mirrors the shared-memory Lemma 5.3
// structure in message passing: x(j,k) and x(j,k+1) differ only in the
// boundary process's receive stage, so they are similar; and x(j,0) is
// j-independent (all sends complete before any receive).
func TestSynchronicSimilarityChainMP(t *testing.T) {
	const n = 3
	m := asyncmp.NewSynchronic(protocols.MPFullInfo{}, n)
	x := m.Initial([]int{0, 1, 0})
	base := m.Apply(x, 0, 0)
	for j := 1; j < n; j++ {
		if got := m.Apply(x, j, 0); got.Key() != base.Key() {
			t.Errorf("x(%d,0) differs from x(0,0)", j)
		}
	}
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			a, b := m.Apply(x, j, k), m.Apply(x, j, k+1)
			if a.Key() == b.Key() {
				continue // boundary process is j itself
			}
			if !core.AgreeModulo(a, b, k) {
				t.Errorf("x(%d,%d) and x(%d,%d) do not agree modulo %d", j, k, j, k+1, k)
			}
		}
	}
}

// TestSynchronicBridgeMP: the Lemma 5.3 bridge carries over verbatim:
// x(j,n)(j,A) and x(j,A)(j,0) agree modulo j.
func TestSynchronicBridgeMP(t *testing.T) {
	const n = 3
	m := asyncmp.NewSynchronic(protocols.MPFullInfo{}, n)
	for a := 0; a < 1<<n; a++ {
		inputs := []int{a & 1, (a >> 1) & 1, (a >> 2) & 1}
		x := m.Initial(inputs)
		for j := 0; j < n; j++ {
			y := m.ApplyAbsent(m.Apply(x, j, n), j)
			yp := m.Apply(m.ApplyAbsent(x, j), j, 0)
			if !core.AgreeModulo(y, yp, j) {
				t.Errorf("inputs=%v j=%d: bridge does not agree modulo j", inputs, j)
			}
		}
	}
}

// TestSynchronicDelayedNotLost: the absent process's incoming messages are
// delayed, not lost — when it finally acts it receives the backlog. This
// is exactly what separates the asynchronous layering from the mobile
// failure model M^mf.
func TestSynchronicDelayedNotLost(t *testing.T) {
	const n = 3
	m := asyncmp.NewSynchronic(protocols.MPFlood{Phases: 4}, n)
	x := m.Initial([]int{0, 1, 1})
	// Two rounds with process 0 absent: its backlog holds two messages per
	// sender.
	y := m.ApplyAbsent(m.ApplyAbsent(x, 0), 0)
	out := y.Outstanding(0)
	if len(out[1]) != 2 || len(out[2]) != 2 {
		t.Fatalf("backlog = %d,%d messages, want 2,2", len(out[1]), len(out[2]))
	}
	// One round with 0 participating: backlog drained.
	z := m.Apply(y, 1, 0)
	for j, msgs := range z.Outstanding(0) {
		if len(msgs) != 0 {
			t.Errorf("after participating, %d messages from %d still pending", len(msgs), j)
		}
	}
	// And process 0 now knows value 1 (it received the flood backlog).
	if st := z.ProtocolState(0); st == x.ProtocolState(0) {
		t.Error("process 0's state unchanged after draining the backlog")
	}
}

// TestSynchronicLayerValenceConnected: Lemma 4.1's precondition in the
// synchronic message-passing submodel.
func TestSynchronicLayerValenceConnected(t *testing.T) {
	const n, phases = 3, 2
	m := asyncmp.NewSynchronic(protocols.MPFlood{Phases: phases}, n)
	o := valence.NewOracle(m)
	for _, x := range m.Inits() {
		if r := valence.AnalyzeLayer(m, o, x, phases); !r.ValenceConnected {
			t.Errorf("init %q: synchronic MP layer not valence connected", x.Key())
		}
	}
}

// TestSynchronicCertifyRefuted: consensus is impossible even in this
// nearly-synchronous message-passing submodel (the paper's "strongest
// explicit version of an FLP-like impossibility theorem").
func TestSynchronicCertifyRefuted(t *testing.T) {
	for _, phases := range []int{1, 2} {
		m := asyncmp.NewSynchronic(protocols.MPFlood{Phases: phases}, 3)
		w, err := valence.Certify(m, phases, 4_000_000)
		if err != nil {
			t.Fatalf("phases=%d: %v", phases, err)
		}
		if w.Kind == valence.OK {
			t.Errorf("phases=%d: consensus certified in the synchronic MP submodel", phases)
		}
	}
}
