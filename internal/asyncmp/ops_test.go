package asyncmp_test

import (
	"errors"
	"testing"

	"repro/internal/asyncmp"
	"repro/internal/protocols"
)

// TestPermutationLayeringLegality: every S^per action equals the op-level
// execution of its defining interleaving of legal local phases (Lemma 4.3's
// executable face for the permutation layering).
func TestPermutationLayeringLegality(t *testing.T) {
	const n = 3
	m := asyncmp.New(protocols.MPFullInfo{}, n)
	perms := [][]int{{0, 1, 2}, {1, 0, 2}, {2, 1, 0}, {1, 2, 0}, {0, 2, 1}, {2, 0, 1}}
	for a := 0; a < 1<<n; a++ {
		x := m.Initial([]int{a & 1, (a >> 1) & 1, (a >> 2) & 1})
		for _, p := range perms {
			want := m.Sequential(x, p)
			got, err := m.ApplyOps(x, asyncmp.SequentialOps(p))
			if err != nil {
				t.Fatal(err)
			}
			if got.Key() != want.Key() {
				t.Errorf("perm %v: action and op semantics differ", p)
			}
			// Drop-one action.
			want = m.Sequential(x, p[:n-1])
			got, err = m.ApplyOps(x, asyncmp.SequentialOps(p[:n-1]))
			if err != nil {
				t.Fatal(err)
			}
			if got.Key() != want.Key() {
				t.Errorf("prefix %v: action and op semantics differ", p[:n-1])
			}
			// Concurrent-pair actions.
			for k := 0; k+1 < n; k++ {
				want = m.WithPair(x, p, k)
				got, err = m.ApplyOps(x, asyncmp.PairOps(p, k))
				if err != nil {
					t.Fatal(err)
				}
				if got.Key() != want.Key() {
					t.Errorf("perm %v pair@%d: action and op semantics differ", p, k)
				}
			}
		}
	}
}

// TestApplyOpsRejectsIllegalPhases checks the legality guards.
func TestApplyOpsRejectsIllegalPhases(t *testing.T) {
	m := asyncmp.New(protocols.MPFlood{Phases: 2}, 2)
	x := m.Initial([]int{0, 1})
	cases := [][]asyncmp.Op{
		{{Kind: asyncmp.RecvOp, P: 0}},                                                             // receive before send
		{{Kind: asyncmp.SendOp, P: 0}, {Kind: asyncmp.SendOp, P: 0}},                               // double send
		{{Kind: asyncmp.SendOp, P: 5}},                                                             // out of range
		{{Kind: asyncmp.SendOp, P: 0}, {Kind: asyncmp.RecvOp, P: 0}, {Kind: asyncmp.RecvOp, P: 0}}, // double receive
	}
	for i, ops := range cases {
		if _, err := m.ApplyOps(x, ops); !errors.Is(err, asyncmp.ErrBadOpSequence) {
			t.Errorf("case %d: err = %v, want ErrBadOpSequence", i, err)
		}
	}
}

// TestInterleavedPhasesBeyondLayerActions: the op executor also runs
// interleavings S^per does NOT offer (fully overlapping phases), and the
// result still makes sense — the submodel restricts the environment, not
// the semantics. Here all three processes send before anyone receives: the
// "all concurrent" block, in which everyone sees everyone.
func TestInterleavedPhasesBeyondLayerActions(t *testing.T) {
	const n = 3
	m := asyncmp.New(protocols.MPFullInfo{}, n)
	x := m.Initial([]int{0, 1, 1})
	ops := []asyncmp.Op{
		{Kind: asyncmp.SendOp, P: 0}, {Kind: asyncmp.SendOp, P: 1}, {Kind: asyncmp.SendOp, P: 2},
		{Kind: asyncmp.RecvOp, P: 0}, {Kind: asyncmp.RecvOp, P: 1}, {Kind: asyncmp.RecvOp, P: 2},
	}
	y, err := m.ApplyOps(x, ops)
	if err != nil {
		t.Fatal(err)
	}
	// Everyone consumed everyone's phase message: nothing outstanding.
	for i := 0; i < n; i++ {
		for j, msgs := range y.Outstanding(i) {
			if len(msgs) != 0 {
				t.Errorf("outstanding %d->%d after all-concurrent block", j, i)
			}
		}
	}
}
