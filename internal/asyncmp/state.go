package asyncmp

import (
	"repro/internal/core"
	"repro/internal/proto"
)

// State is a global state of the asynchronous message-passing model: the
// cumulative channel histories (environment), each process's protocol state
// and per-channel consumption counters (local states). Immutable after
// construction.
type State struct {
	n        int
	hist     [][][]string // hist[from][to] = every message ever sent from->to
	consumed [][]int      // consumed[to][from] = prefix of hist[from][to] delivered
	plocal   []string     // protocol states
	decided  []int
	inputs   []int
	localKey []string
	envKey   string
	key      string
}

var (
	_ core.State = (*State)(nil)
	_ core.Input = (*State)(nil)
)

// newState assembles an immutable state from owned (not aliased) slices.
func newState(p proto.Decider, hist [][][]string, consumed [][]int, plocal []string, inputs []int) *State {
	n := len(plocal)
	s := &State{
		n:        n,
		hist:     hist,
		consumed: consumed,
		plocal:   plocal,
		decided:  make([]int, n),
		inputs:   inputs,
		localKey: make([]string, n),
	}
	for i, l := range plocal {
		if v, ok := p.Decide(l); ok {
			s.decided[i] = v
		} else {
			s.decided[i] = core.Undecided
		}
	}
	// Environment: the channel histories.
	chans := make([]string, 0, n*n)
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			chans = append(chans, proto.Join(hist[from][to]...))
		}
	}
	s.envKey = proto.Join(chans...)
	// Locals: protocol state plus consumption counters.
	for i := 0; i < n; i++ {
		s.localKey[i] = proto.Join(plocal[i], proto.JoinInts(consumed[i]...))
	}
	fields := make([]string, 0, n+1)
	fields = append(fields, s.envKey)
	fields = append(fields, s.localKey...)
	s.key = proto.Join(fields...)
	return s
}

// N implements core.State.
func (s *State) N() int { return s.n }

// Key implements core.State.
func (s *State) Key() string { return s.key }

// AppendKey implements core.KeyAppender: the key is precomputed at
// construction, so the fast path is a copy of the cached bytes.
//lint:hotpath
func (s *State) AppendKey(dst []byte) []byte { return append(dst, s.key...) }

// EnvKey implements core.State.
func (s *State) EnvKey() string { return s.envKey }

// Local implements core.State.
func (s *State) Local(i int) string { return s.localKey[i] }

// Decided implements core.State.
func (s *State) Decided(i int) (int, bool) {
	if s.decided[i] == core.Undecided {
		return core.Undecided, false
	}
	return s.decided[i], true
}

// FailedAt implements core.State: the model displays no finite failure.
func (s *State) FailedAt(int) bool { return false }

// InputOf implements core.Input.
func (s *State) InputOf(i int) int { return s.inputs[i] }

// ProtocolState returns process i's protocol state.
func (s *State) ProtocolState(i int) string { return s.plocal[i] }

// Outstanding returns the messages outstanding for process i, per sender.
func (s *State) Outstanding(i int) [][]string {
	out := make([][]string, s.n)
	for j := 0; j < s.n; j++ {
		pending := s.hist[j][i][s.consumed[i][j]:]
		out[j] = append([]string(nil), pending...)
	}
	return out
}

// working is a mutable copy of a state used while applying a layer action.
type working struct {
	n        int
	hist     [][][]string
	consumed [][]int
	plocal   []string
}

func (s *State) thaw() *working {
	w := &working{
		n:        s.n,
		hist:     make([][][]string, s.n),
		consumed: make([][]int, s.n),
		plocal:   append([]string(nil), s.plocal...),
	}
	for from := 0; from < s.n; from++ {
		w.hist[from] = make([][]string, s.n)
		for to := 0; to < s.n; to++ {
			// Histories are append-only; a shallow copy of the slice header
			// would alias the backing array across sibling successors, so
			// copy explicitly.
			w.hist[from][to] = append([]string(nil), s.hist[from][to]...)
		}
	}
	for to := 0; to < s.n; to++ {
		w.consumed[to] = append([]int(nil), s.consumed[to]...)
	}
	return w
}

func (w *working) freeze(p proto.Decider, inputs []int) *State {
	return newState(p, w.hist, w.consumed, w.plocal, inputs)
}
