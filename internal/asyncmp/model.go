package asyncmp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/proto"
)

// Model is the asynchronous message-passing model with the permutation
// layering S^per. It implements core.Model. Successor enumeration is
// memoized in an embedded per-model cache shared by every analysis pass
// over the same model value.
type Model struct {
	*core.SuccessorCache
	p     proto.MPProtocol
	n     int
	name  string
	inits core.InitMemo
}

var _ core.Model = (*Model)(nil)

// New returns the model for protocol p on n processes.
func New(p proto.MPProtocol, n int) *Model {
	m := &Model{p: p, n: n, name: fmt.Sprintf("asyncmp/Sper(n=%d,%s)", n, p.Name())}
	m.SuccessorCache = core.NewSuccessorCache(core.SuccessorFunc(m.successors))
	return m
}

// Name implements core.Model.
func (m *Model) Name() string { return m.name }

// Protocol returns the protocol the model runs.
func (m *Model) Protocol() proto.MPProtocol { return m.p }

// N returns the number of processes.
func (m *Model) N() int { return m.n }

// Inits implements core.Model: Con_0 in binary counting order, all channels
// empty.
func (m *Model) Inits() []core.State {
	return m.inits.Get(func() []core.State {
		out := make([]core.State, 0, 1<<uint(m.n))
		for a := 0; a < 1<<uint(m.n); a++ {
			inputs := make([]int, m.n)
			for i := 0; i < m.n; i++ {
				inputs[i] = (a >> uint(i)) & 1
			}
			out = append(out, m.Initial(inputs))
		}
		return out
	})
}

// Initial builds the initial state for an explicit input assignment.
func (m *Model) Initial(inputs []int) *State {
	hist := make([][][]string, m.n)
	consumed := make([][]int, m.n)
	plocal := make([]string, m.n)
	for i := 0; i < m.n; i++ {
		hist[i] = make([][]string, m.n)
		consumed[i] = make([]int, m.n)
		plocal[i] = m.p.Init(m.n, i, inputs[i])
	}
	return newState(m.p, hist, consumed, plocal, append([]int(nil), inputs...))
}

// phaseSend emits process i's messages (computed from its pre-phase state).
func (m *Model) phaseSend(w *working, i int) {
	outs := m.p.Send(w.plocal[i])
	for d := 0; d < w.n && d < len(outs); d++ {
		if d == i || outs[d] == "" {
			continue
		}
		w.hist[i][d] = append(w.hist[i][d], outs[d])
	}
}

// phaseReceive delivers everything outstanding for i and updates its state.
func (m *Model) phaseReceive(w *working, i int) {
	in := make([][]string, w.n)
	for j := 0; j < w.n; j++ {
		in[j] = w.hist[j][i][w.consumed[i][j]:]
		w.consumed[i][j] = len(w.hist[j][i])
	}
	w.plocal[i] = m.p.Receive(w.plocal[i], in)
}

// phase performs one complete local phase of process i: send (from the
// pre-phase state), then receive everything outstanding.
func (m *Model) phase(w *working, i int) {
	m.phaseSend(w, i)
	m.phaseReceive(w, i)
}

// Sequential applies the local phases of the given processes in order (an
// action of the first or second type). The slice may list fewer than n
// processes.
func (m *Model) Sequential(x *State, order []int) *State {
	w := x.thaw()
	for _, i := range order {
		m.phase(w, i)
	}
	return w.freeze(m.p, x.inputs)
}

// WithPair applies the action [order[0..k-1], {order[k],order[k+1]},
// order[k+2..]]: sequential phases with the processes at positions k and
// k+1 run as a concurrent block — both send from their pre-block states,
// then both receive everything outstanding (including each other's fresh
// message).
func (m *Model) WithPair(x *State, order []int, k int) *State {
	w := x.thaw()
	for idx := 0; idx < len(order); idx++ {
		if idx == k {
			a, b := order[k], order[k+1]
			m.phaseSend(w, a)
			m.phaseSend(w, b)
			m.phaseReceive(w, a)
			m.phaseReceive(w, b)
			idx++
			continue
		}
		m.phase(w, order[idx])
	}
	return w.freeze(m.p, x.inputs)
}

// successors enumerates one successor per action of the three types; the
// embedded cache serves Successors. Full permutations are labeled
// "[0,1,2]", drop-one actions omit one process ("[0,2]"), and
// concurrent-pair actions mark the block ("[0,{1,2}]"); pairs are emitted
// once, with the block in ascending order.
func (m *Model) successors(x core.State) []core.Succ {
	s, ok := x.(*State)
	if !ok {
		return nil
	}
	var out []core.Succ
	perms := permutations(m.n)
	for _, p := range perms {
		out = append(out, core.Succ{
			Action: permLabel(p, -1),
			State:  m.Sequential(s, p),
		})
	}
	for _, p := range perms {
		// Drop the last process of the permutation: every ordered
		// (n-1)-sequence arises exactly once this way.
		out = append(out, core.Succ{
			Action: permLabel(p[:m.n-1], -1),
			State:  m.Sequential(s, p[:m.n-1]),
		})
	}
	for _, p := range perms {
		for k := 0; k+1 < m.n; k++ {
			if p[k] > p[k+1] {
				continue // emit each unordered block once
			}
			out = append(out, core.Succ{
				Action: permLabel(p, k),
				State:  m.WithPair(s, p, k),
			})
		}
	}
	return out
}

// permLabel formats a scheduling action; pair >= 0 marks the concurrent
// block starting at that position, -1 means none.
func permLabel(order []int, pair int) string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < len(order); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		if i == pair {
			b.WriteByte('{')
			b.WriteString(strconv.Itoa(order[i]))
			b.WriteByte(',')
			b.WriteString(strconv.Itoa(order[i+1]))
			b.WriteByte('}')
			i++
			continue
		}
		b.WriteString(strconv.Itoa(order[i]))
	}
	b.WriteByte(']')
	return b.String()
}

// permutations returns all permutations of 0..n-1 in lexicographic order.
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	for {
		out = append(out, append([]int(nil), cur...))
		// Next lexicographic permutation.
		i := n - 2
		for i >= 0 && cur[i] >= cur[i+1] {
			i--
		}
		if i < 0 {
			return out
		}
		j := n - 1
		for cur[j] <= cur[i] {
			j--
		}
		cur[i], cur[j] = cur[j], cur[i]
		for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
			cur[l], cur[r] = cur[r], cur[l]
		}
	}
}
