// Package asyncmp implements the asynchronous message-passing model with
// the paper's permutation layering S^per (Section 5.1), the first
// message-passing analogue of immediate-snapshot executions.
//
// # Local phases
//
// A local phase of process i consists of an emission of at most one message
// to every other process, and the delivery of all messages outstanding for
// i. Mirroring the write-then-read orientation of immediate snapshots, the
// messages emitted in a phase are a function of the process's local state at
// the start of the phase, and the delivered messages update the state
// afterwards: phase(i) = send(state_i); state_i' = receive(state_i, due).
// This is the orientation under which the paper's claims
//
//	x[..,pk,pk+1,..] ~s x[..,{pk,pk+1},..] ~s x[..,pk+1,pk,..]
//
// hold exactly (with receive-before-send and sends computed from the
// post-receive state, the messages of pk+1 — and hence the states of every
// later process — would depend on the order of the pair, and the
// transposition chain would fail); the mechanical check is in the package
// tests and in experiment E4.
//
// # Environment
//
// The environment's local state is the cumulative per-channel send history:
// hist[from][to] is the sequence of all messages ever sent from one process
// to another. How far each receiver has consumed each channel is part of the
// receiver's local state (together with its protocol state); the messages
// outstanding for i on channel j are hist[j][i][consumed[i][j]:]. This
// choice is what makes the environment agree across states that differ only
// in whether a message was already delivered — exactly the situations the
// paper's similarity arguments rely on — while the global state still
// determines the future of the system.
//
// # Environment actions (layers)
//
//   - full permutation [p1,...,pn]: the processes perform local phases
//     sequentially in the given order (later processes receive the fresh
//     messages of earlier ones);
//   - drop-one [p1,...,p_{n-1}]: as above, but one process performs no
//     phase at all;
//   - concurrent pair [p1,...,{pk,pk+1},...,pn]: as the full permutation,
//     except pk and pk+1 run concurrently — both send from their pre-phase
//     states and both then receive everything outstanding, including each
//     other's fresh message (the immediate-snapshot "block").
//
// Every S^per-run has all processes but at most one performing local phases
// infinitely often, and the model displays no finite failure.
package asyncmp
