package asyncmp_test

import (
	"testing"
	"testing/quick"

	"repro/internal/asyncmp"
	"repro/internal/protocols"
)

// TestQuickScheduleDeterminism: any sequence of layer actions replays to
// the same state key.
func TestQuickScheduleDeterminism(t *testing.T) {
	const n = 3
	m := asyncmp.New(protocols.MPFlood{Phases: 4}, n)
	f := func(inputBits uint8, choices []uint8) bool {
		if len(choices) > 3 {
			choices = choices[:3]
		}
		x := m.Initial([]int{int(inputBits) & 1, int(inputBits>>1) & 1, int(inputBits>>2) & 1})
		run := func() string {
			cur := x
			for _, c := range choices {
				succs := m.Successors(cur)
				next, ok := succs[int(c)%len(succs)].State.(*asyncmp.State)
				if !ok {
					return "cast-failure"
				}
				cur = next
			}
			return cur.Key()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickPhaseOrderIndependencePrefix: actions that schedule disjoint
// phase sets in the same relative order commute when the processes do not
// exchange messages within the layer... they do exchange here, so instead
// we check the weaker, always-true property that a full permutation's
// state depends only on the permutation, not on how it was built
// (Sequential vs WithPair with an ascending pair collapsed back out).
func TestQuickPermutationWellDefined(t *testing.T) {
	const n = 3
	m := asyncmp.New(protocols.MPFullInfo{}, n)
	perms := [][]int{{0, 1, 2}, {1, 0, 2}, {2, 1, 0}, {1, 2, 0}, {0, 2, 1}, {2, 0, 1}}
	f := func(inputBits, which uint8) bool {
		x := m.Initial([]int{int(inputBits) & 1, int(inputBits>>1) & 1, int(inputBits>>2) & 1})
		p := perms[int(which)%len(perms)]
		a := m.Sequential(x, p)
		b := m.Sequential(x, append([]int(nil), p...))
		return a.Key() == b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickOutstandingConservation: after any single layer, every message
// ever sent is either consumed by its receiver or still outstanding — the
// channel bookkeeping never loses or duplicates messages.
func TestQuickOutstandingConservation(t *testing.T) {
	const n = 3
	m := asyncmp.New(protocols.MPFlood{Phases: 4}, n)
	f := func(inputBits, choice uint8) bool {
		x := m.Initial([]int{int(inputBits) & 1, int(inputBits>>1) & 1, int(inputBits>>2) & 1})
		succs := m.Successors(x)
		y, ok := succs[int(choice)%len(succs)].State.(*asyncmp.State)
		if !ok {
			return false
		}
		// Every process that took a phase sent to each other process once;
		// count outstanding + a re-derivation of consumed from the next
		// layer's delivery.
		for i := 0; i < n; i++ {
			for j, msgs := range y.Outstanding(i) {
				if j == i && len(msgs) != 0 {
					return false // no self-channels
				}
				if len(msgs) > 1 {
					return false // at most one phase per process per layer
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
