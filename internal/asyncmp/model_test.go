package asyncmp_test

import (
	"testing"

	"repro/internal/asyncmp"
	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/valence"
)

func newModel(n, phases int) *asyncmp.Model {
	return asyncmp.New(protocols.MPFlood{Phases: phases}, n)
}

// TestSuccessorCount checks |S^per(x)| = n! + n! + (n-1)*n!/2 labeled
// actions (full permutations, drop-one sequences, concurrent-pair actions).
func TestSuccessorCount(t *testing.T) {
	for n := 2; n <= 4; n++ {
		m := newModel(n, 2)
		x := m.Initial(make([]int, n))
		fact := 1
		for i := 2; i <= n; i++ {
			fact *= i
		}
		want := fact + fact + (n-1)*fact/2
		if got := len(m.Successors(x)); got != want {
			t.Errorf("n=%d: |S^per(x)| = %d, want %d", n, got, want)
		}
	}
}

// TestTranspositionSimilarityChain checks the paper's chain
//
//	x[..,pk,pk+1,..] ~s x[..,{pk,pk+1},..] ~s x[..,pk+1,pk,..]
//
// for every adjacent position of every permutation (full-information
// protocol: the strongest instance).
func TestTranspositionSimilarityChain(t *testing.T) {
	const n = 3
	m := asyncmp.New(protocols.MPFullInfo{}, n)
	x := m.Initial([]int{0, 1, 1})
	perms := [][]int{{0, 1, 2}, {1, 0, 2}, {2, 1, 0}, {1, 2, 0}, {0, 2, 1}, {2, 0, 1}}
	for _, p := range perms {
		for k := 0; k+1 < n; k++ {
			seq := m.Sequential(x, p)
			conc := m.WithPair(x, p, k)
			swapped := append([]int(nil), p...)
			swapped[k], swapped[k+1] = swapped[k+1], swapped[k]
			seq2 := m.Sequential(x, swapped)

			if !core.AgreeModulo(seq, conc, p[k]) {
				t.Errorf("perm %v k=%d: sequential and concurrent do not agree modulo %d", p, k, p[k])
			}
			if _, ok := core.Similar(seq, conc); !ok {
				t.Errorf("perm %v k=%d: sequential !~s concurrent", p, k)
			}
			if !core.AgreeModulo(conc, seq2, p[k+1]) {
				t.Errorf("perm %v k=%d: concurrent and transposed do not agree modulo %d", p, k, p[k+1])
			}
			if _, ok := core.Similar(conc, seq2); !ok {
				t.Errorf("perm %v k=%d: concurrent !~s transposed", p, k)
			}
		}
	}
}

// TestDiamondIdentity checks the paper's minimal FLP diamond: the two
// executions
//
//	x[p1,...,pn-1,pn][p1,...,pn-1]  and  x[p1,...,pn-1][pn,p1,...,pn-1]
//
// end in the *same* state, because the same sequence of basic actions
// happens in both.
func TestDiamondIdentity(t *testing.T) {
	const n = 3
	m := asyncmp.New(protocols.MPFullInfo{}, n)
	for a := 0; a < 1<<n; a++ {
		x := m.Initial([]int{a & 1, (a >> 1) & 1, (a >> 2) & 1})
		full := []int{0, 1, 2}
		head := []int{0, 1}
		rot := []int{2, 0, 1}
		y := m.Sequential(m.Sequential(x, full), head)
		yp := m.Sequential(m.Sequential(x, head), rot)
		if y.Key() != yp.Key() {
			t.Errorf("inputs %03b: diamond states differ", a)
		}
	}
}

// TestDiamondNotSimilar checks the paper's observation that the diamond's
// top states x[p1..pn] and x[p1..pn-1] are NOT similar: they differ both in
// pn's local state and in the environment (pn's messages were sent in one
// and not the other). This is exactly why valence reasoning is needed.
func TestDiamondNotSimilar(t *testing.T) {
	const n = 3
	m := asyncmp.New(protocols.MPFullInfo{}, n)
	x := m.Initial([]int{0, 1, 1})
	full := m.Sequential(x, []int{0, 1, 2})
	head := m.Sequential(x, []int{0, 1})
	if full.EnvKey() == head.EnvKey() {
		t.Error("environments should differ (pn's sends)")
	}
	if _, ok := core.Similar(full, head); ok {
		t.Error("x[p1..pn] ~s x[p1..pn-1] should NOT hold")
	}
}

// TestSharedValenceViaCommonSuccessor checks x[p1..pn] ~v x[p1..pn-1]
// directly with the valence oracle, as the diamond argument predicts.
func TestSharedValenceViaCommonSuccessor(t *testing.T) {
	const n, phases = 3, 2
	m := newModel(n, phases)
	o := valence.NewOracle(m)
	x := m.Initial([]int{0, 1, 1})
	full := m.Sequential(x, []int{0, 1, 2})
	head := m.Sequential(x, []int{0, 1})
	if !o.SharedValence(full, head, phases) {
		t.Error("x[p1..pn] and x[p1..pn-1] share no valence")
	}
}

// TestLayerValenceConnected checks that every S^per layer over the initial
// states is valence connected for MPFlood within its decision horizon.
func TestLayerValenceConnected(t *testing.T) {
	const n, phases = 3, 2
	m := newModel(n, phases)
	o := valence.NewOracle(m)
	for _, x := range m.Inits() {
		r := valence.AnalyzeLayer(m, o, x, phases)
		if !r.ValenceConnected {
			t.Errorf("init %q: S^per layer not valence connected", x.Key())
		}
	}
}

// TestCertifyMPFloodRefuted: consensus is impossible 1-resiliently in
// asynchronous message passing (the paper's message-passing analogue of
// Corollary 5.4); MPFlood with any phase bound must be refuted.
func TestCertifyMPFloodRefuted(t *testing.T) {
	for _, phases := range []int{1, 2} {
		m := newModel(3, phases)
		w, err := valence.Certify(m, phases, 4_000_000)
		if err != nil {
			t.Fatalf("phases=%d: %v", phases, err)
		}
		if w.Kind == valence.OK {
			t.Errorf("phases=%d: MPFlood certified OK, contradicting FLP", phases)
		}
	}
}

// TestOutstandingDelivery checks channel bookkeeping: messages sent in a
// phase are outstanding for the receiver until its next phase.
func TestOutstandingDelivery(t *testing.T) {
	const n = 3
	m := newModel(n, 5)
	x := m.Initial([]int{0, 1, 1})
	// Only process 0 and 1 move; their messages to 2 pile up.
	y := m.Sequential(x, []int{0, 1})
	out := y.Outstanding(2)
	if len(out[0]) != 1 || len(out[1]) != 1 {
		t.Fatalf("process 2 should have one outstanding message from each of 0 and 1, got %v", out)
	}
	// After 2 moves, nothing is outstanding for it.
	z := m.Sequential(y, []int{2})
	for j, msgs := range z.Outstanding(2) {
		if len(msgs) != 0 {
			t.Errorf("after its phase, process 2 still has %d outstanding from %d", len(msgs), j)
		}
	}
}
