package asyncmp

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/proto"
)

// Synchronic is the synchronic layering for asynchronous message passing —
// the paper remarks after Corollary 5.4 that "a completely analogous
// impossibility proof can be given for asynchronous message passing as
// well; the structure of the layering function and the reasoning underlying
// the results remain unchanged", and that the resulting submodel is "even
// closer to the synchronous models that are popular in the literature".
//
// A virtual round mirrors the shared-memory stages W1,R1,W2,R2:
//
//   - action (j,k): the proper processes (all but j) send in W1; the
//     proper processes with id < k receive in R1 — everything outstanding
//     EXCEPT j's yet-unsent round message; j sends in W2; j and the proper
//     processes with id >= k receive in R2, seeing everything outstanding
//     including j's fresh messages.
//   - action (j,A): the proper processes send in W1 and receive in R1; the
//     slow process j neither sends nor receives, and everything addressed
//     to it (and everything it will eventually send) stays pending —
//     delayed, not lost, the crucial difference from the synchronous
//     mobile-failure model.
//
// In every round at least n-1 processes send and receive a full round of
// messages, so the submodel is fair and nearly synchronous; consensus is
// still impossible (the package tests certify the refutation).
type Synchronic struct {
	*core.SuccessorCache
	p     proto.MPProtocol
	n     int
	name  string
	inits core.InitMemo
}

var _ core.Model = (*Synchronic)(nil)

// NewSynchronic returns the synchronic message-passing model for protocol
// p on n processes.
func NewSynchronic(p proto.MPProtocol, n int) *Synchronic {
	m := &Synchronic{p: p, n: n, name: fmt.Sprintf("asyncmp/Ssync(n=%d,%s)", n, p.Name())}
	m.SuccessorCache = core.NewSuccessorCache(core.SuccessorFunc(m.successors))
	return m
}

// Name implements core.Model.
func (m *Synchronic) Name() string { return m.name }

// N returns the number of processes.
func (m *Synchronic) N() int { return m.n }

// Inits implements core.Model: Con_0 in binary counting order.
func (m *Synchronic) Inits() []core.State {
	return m.inits.Get(func() []core.State {
		out := make([]core.State, 0, 1<<uint(m.n))
		for a := 0; a < 1<<uint(m.n); a++ {
			inputs := make([]int, m.n)
			for i := 0; i < m.n; i++ {
				inputs[i] = (a >> uint(i)) & 1
			}
			out = append(out, m.Initial(inputs))
		}
		return out
	})
}

// Initial builds the initial state for an explicit input assignment.
func (m *Synchronic) Initial(inputs []int) *State {
	hist := make([][][]string, m.n)
	consumed := make([][]int, m.n)
	plocal := make([]string, m.n)
	for i := 0; i < m.n; i++ {
		hist[i] = make([][]string, m.n)
		consumed[i] = make([]int, m.n)
		plocal[i] = m.p.Init(m.n, i, inputs[i])
	}
	return newState(m.p, hist, consumed, plocal, append([]int(nil), inputs...))
}

// receiveAll delivers everything outstanding for process i.
func (m *Synchronic) receiveAll(w *working, i int) {
	in := make([][]string, w.n)
	for j := 0; j < w.n; j++ {
		in[j] = w.hist[j][i][w.consumed[i][j]:]
		w.consumed[i][j] = len(w.hist[j][i])
	}
	w.plocal[i] = m.p.Receive(w.plocal[i], in)
}

// sendAll emits process i's round messages (from its pre-round state).
func (m *Synchronic) sendAll(w *working, i int, pre string) {
	outs := m.p.Send(pre)
	for d := 0; d < w.n && d < len(outs); d++ {
		if d == i || outs[d] == "" {
			continue
		}
		w.hist[i][d] = append(w.hist[i][d], outs[d])
	}
}

// Apply performs the virtual round of action (j,k): proper sends, early
// receivers (proper id < k) before j's sends, then j's sends, then the late
// receivers (j and proper id >= k).
func (m *Synchronic) Apply(x *State, j, k int) *State {
	w := x.thaw()
	// W1: proper processes send, from their pre-round states.
	for i := 0; i < m.n; i++ {
		if i != j {
			m.sendAll(w, i, x.plocal[i])
		}
	}
	// R1: proper early receivers — before j's round message exists, so
	// "everything outstanding" excludes it naturally.
	for i := 0; i < m.n; i++ {
		if i != j && i < k {
			m.receiveAll(w, i)
		}
	}
	// W2: the slow process sends (from its pre-round state).
	m.sendAll(w, j, x.plocal[j])
	// R2: the late receivers.
	for i := 0; i < m.n; i++ {
		if i != j && i >= k {
			m.receiveAll(w, i)
		}
	}
	m.receiveAll(w, j)
	return w.freeze(m.p, x.inputs)
}

// ApplyAbsent performs the virtual round of action (j,A): the proper
// processes send and receive; j does nothing.
func (m *Synchronic) ApplyAbsent(x *State, j int) *State {
	w := x.thaw()
	for i := 0; i < m.n; i++ {
		if i != j {
			m.sendAll(w, i, x.plocal[i])
		}
	}
	for i := 0; i < m.n; i++ {
		if i != j {
			m.receiveAll(w, i)
		}
	}
	return w.freeze(m.p, x.inputs)
}

// successors enumerates S(x) = { x(j,k) } ∪ { x(j,A) }, mirroring the
// shared-memory synchronic layering; the embedded cache serves Successors.
func (m *Synchronic) successors(x core.State) []core.Succ {
	s, ok := x.(*State)
	if !ok {
		return nil
	}
	out := make([]core.Succ, 0, m.n*(m.n+2))
	for j := 0; j < m.n; j++ {
		for k := 0; k <= m.n; k++ {
			out = append(out, core.Succ{
				Action: "(" + strconv.Itoa(j) + "," + strconv.Itoa(k) + ")",
				State:  m.Apply(s, j, k),
			})
		}
		out = append(out, core.Succ{
			Action: "(" + strconv.Itoa(j) + ",A)",
			State:  m.ApplyAbsent(s, j),
		})
	}
	return out
}
