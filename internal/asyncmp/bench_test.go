package asyncmp_test

import (
	"fmt"
	"testing"

	"repro/internal/asyncmp"
	"repro/internal/protocols"
)

func BenchmarkSuccessors(b *testing.B) {
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := asyncmp.New(protocols.MPFlood{Phases: 2}, n)
			x := m.Initial(make([]int, n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := m.Successors(x); len(got) == 0 {
					b.Fatal("no successors")
				}
			}
		})
	}
}

func BenchmarkSequentialLayer(b *testing.B) {
	const n = 4
	m := asyncmp.New(protocols.MPFullInfo{}, n)
	x := m.Initial(make([]int, n))
	order := []int{0, 1, 2, 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Sequential(x, order)
	}
}
