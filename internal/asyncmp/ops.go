package asyncmp

import (
	"errors"
	"fmt"
)

// The op-level executor gives the asynchronous message-passing model its
// primitive semantics — individual send and receive events in an arbitrary
// interleaving — independently of the permutation actions. It makes the
// layering claim executable: every S^per action must coincide with a legal
// interleaving of local phases (checked in the package tests for every
// action under the full-information protocol).

// OpKind distinguishes primitive events.
type OpKind int

// Primitive event kinds. A local phase of process P is SendOp(P) followed
// later by RecvOp(P); the emission is computed from P's state at the start
// of the phase, and the receive delivers everything outstanding at its
// moment of execution.
const (
	// SendOp emits process P's phase messages.
	SendOp OpKind = iota + 1
	// RecvOp delivers everything outstanding for P and completes its phase.
	RecvOp
)

// Op is a primitive event.
type Op struct {
	Kind OpKind
	P    int
}

// ErrBadOpSequence is returned when an op sequence is not a legal set of
// local phases.
var ErrBadOpSequence = errors.New("asyncmp: op sequence is not a set of legal local phases")

// ApplyOps executes a primitive interleaving in which each process
// performs at most one local phase (one SendOp then one RecvOp).
func (m *Model) ApplyOps(x *State, ops []Op) (*State, error) {
	w := x.thaw()
	sent := make([]bool, m.n)
	received := make([]bool, m.n)
	for _, op := range ops {
		if op.P < 0 || op.P >= m.n {
			return nil, fmt.Errorf("process %d out of range: %w", op.P, ErrBadOpSequence)
		}
		switch op.Kind {
		case SendOp:
			if sent[op.P] || received[op.P] {
				return nil, fmt.Errorf("process %d sends twice: %w", op.P, ErrBadOpSequence)
			}
			sent[op.P] = true
			m.phaseSend(w, op.P)
		case RecvOp:
			if received[op.P] {
				return nil, fmt.Errorf("process %d receives twice: %w", op.P, ErrBadOpSequence)
			}
			if !sent[op.P] {
				return nil, fmt.Errorf("process %d receives before sending: %w", op.P, ErrBadOpSequence)
			}
			received[op.P] = true
			m.phaseReceive(w, op.P)
		default:
			return nil, fmt.Errorf("unknown op kind %d: %w", op.Kind, ErrBadOpSequence)
		}
	}
	return w.freeze(m.p, x.inputs), nil
}

// SequentialOps expands a sequential scheduling action into its op-level
// interleaving: each listed process sends then receives before the next
// starts.
func SequentialOps(order []int) []Op {
	ops := make([]Op, 0, 2*len(order))
	for _, p := range order {
		ops = append(ops, Op{Kind: SendOp, P: p}, Op{Kind: RecvOp, P: p})
	}
	return ops
}

// PairOps expands the concurrent-pair action: at position k both block
// members send before either receives.
func PairOps(order []int, k int) []Op {
	var ops []Op
	for idx := 0; idx < len(order); idx++ {
		if idx == k {
			a, b := order[k], order[k+1]
			ops = append(ops,
				Op{Kind: SendOp, P: a}, Op{Kind: SendOp, P: b},
				Op{Kind: RecvOp, P: a}, Op{Kind: RecvOp, P: b})
			idx++
			continue
		}
		ops = append(ops, Op{Kind: SendOp, P: order[idx]}, Op{Kind: RecvOp, P: order[idx]})
	}
	return ops
}
