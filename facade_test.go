package layers_test

// Exercises every facade entry point not already covered by the experiment
// tests, so the public API surface stays wired to the internals.

import (
	"strings"
	"testing"

	layers "repro"
)

func TestFacadeModelConstructors(t *testing.T) {
	models := []layers.Model{
		layers.SyncS1(layers.FloodSet{Rounds: 2}, 3),
		layers.AsyncSynchronic(layers.MPFlood{Phases: 1}, 3),
		layers.SyncStMulti(layers.FloodSet{Rounds: 2}, 3, 1, 1),
		layers.SyncStGeneral(layers.FloodSet{Rounds: 2}, 3, 1),
		layers.MobileFull(layers.FloodSet{Rounds: 2}, 3),
	}
	for _, m := range models {
		if m.Name() == "" {
			t.Error("unnamed model")
		}
		inits := m.Inits()
		if len(inits) != 8 {
			t.Errorf("%s: %d inits", m.Name(), len(inits))
		}
		if len(m.Successors(inits[0])) == 0 {
			t.Errorf("%s: empty layer", m.Name())
		}
	}
}

func TestFacadeAnalysisHelpers(t *testing.T) {
	m := layers.MobileS1(layers.FloodSet{Rounds: 2}, 3)
	g, err := layers.Explore(m, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() <= 8 {
		t.Errorf("explored %d states", g.Len())
	}
	x, y := m.Inits()[0], m.Inits()[1]
	if !layers.AgreeModulo(x, y, 0) {
		t.Error("inits 0 and 1 should agree modulo process 0")
	}
	if h := layers.ConstHorizon(3); h(0) != 3 || h(9) != 3 {
		t.Error("ConstHorizon broken")
	}
	o := layers.NewOracle(m)
	p, err := layers.BivalenceWidth(m, o, layers.ConstHorizon(2), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.States[0] != 8 {
		t.Errorf("width profile depth 0 = %d states", p.States[0])
	}
	w, err := layers.CertifyFrom(m, []layers.State{x}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != layers.OK {
		t.Errorf("all-zero root alone should certify (no disagreement reachable): %v", w.Kind)
	}
	d, err := layers.MeasureDecisionDepth(m, []layers.State{x}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Undecided != 0 || d.Min != 2 {
		t.Errorf("decision depth from all-zero root: min=%d undecided=%d", d.Min, d.Undecided)
	}
}

func TestFacadeSimHelpers(t *testing.T) {
	m := layers.MobileS1(layers.FloodSet{Rounds: 2}, 3)
	r := &layers.Runner{Model: m, MaxLayers: 2}
	out, err := r.Run(m.Inits()[0], layers.NewRandomScheduler(7))
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllDecided {
		t.Error("all-zero run undecided")
	}
	o := layers.NewOracle(m)
	adv := layers.NewAdversaryScheduler(o, layers.DecreasingHorizon(2, 1))
	if adv.Name() == "" {
		t.Error("unnamed scheduler")
	}
	if s := layers.FormatState(m.Inits()[0]); !strings.Contains(s, "p0=⊥") {
		t.Errorf("FormatState = %q", s)
	}
	diff := layers.CompareStates(m.Inits()[0], m.Inits()[1])
	if diff.SimilarVia != 0 {
		t.Errorf("CompareStates.SimilarVia = %d", diff.SimilarVia)
	}
	ac := layers.NewAsyncCluster(layers.MPFlood{Phases: 1}, []int{0, 1, 1})
	defer ac.Close()
	if _, err := ac.Phase(0); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTopologyHelpers(t *testing.T) {
	s := layers.FromValues([]int{0, 1})
	c := layers.NewComplex(s)
	if !c.Has(s) || c.MaxSize() != 2 {
		t.Error("complex construction broken")
	}
	task := layers.BinaryConsensusTask(3)
	if !strings.Contains(task.Problem.Name, "consensus") {
		t.Errorf("task name %q", task.Problem.Name)
	}
	cover := layers.ConsensusCovering(3)
	m := layers.SyncSt(layers.FloodSet{Rounds: 2}, 3, 1)
	decided, err := layers.CollectDecidedSimplexes(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decided {
		if !cover.O0.Has(d) && !cover.O1.Has(d) {
			t.Errorf("decided simplex %s outside the consensus covering", d)
		}
	}
}

func TestFacadeValidators(t *testing.T) {
	if vs := layers.ValidateSyncProtocol(layers.FloodSet{Rounds: 2}, 3, 3); len(vs) != 0 {
		t.Errorf("FloodSet flagged: %v", vs)
	}
	vs := layers.ValidateSyncProtocol(layers.FlickerDecider{}, 3, 3)
	if len(vs) == 0 {
		t.Error("flicker protocol passed validation")
	}
	if vs[0].String() == "" {
		t.Error("empty violation string")
	}
	if vs := layers.ValidateSMProtocol(layers.SMVote{Phases: 2}, 3, 2); len(vs) != 0 {
		t.Errorf("SMVote flagged: %v", vs)
	}
}
