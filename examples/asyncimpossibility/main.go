// Asyncimpossibility reproduces the Section 5.1 analysis of the two
// asynchronous models:
//
//   - shared memory, synchronic layering S^rw: the near-synchronous
//     submodel in which consensus is still impossible (Corollary 5.4),
//     including the x(j,n) ~v x(j,A) bridge from Lemma 5.3's proof;
//   - message passing, permutation layering S^per: the transposition
//     similarity chain and the minimal FLP diamond, plus the refutation.
//
// Run with: go run ./examples/asyncimpossibility
package main

import (
	"fmt"
	"log"

	layers "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 3
	if err := sharedMemory(n); err != nil {
		return err
	}
	fmt.Println()
	return messagePassing(n)
}

func sharedMemory(n int) error {
	const phases = 2
	p := layers.SMVote{Phases: phases}
	m := layers.SharedMemory(p, n)
	fmt.Printf("== %s ==\n", m.Name())

	// Lemma 5.3's bridge: y = x(j,n)(j,A) and y' = x(j,A)(j,0) agree
	// modulo j — the step that links the absent action into the layer.
	x := m.Initial([]int{0, 1, 1})
	j := 1
	y := m.ApplyAbsent(m.Apply(x, j, n), j)
	yp := m.Apply(m.ApplyAbsent(x, j), j, 0)
	d := layers.CompareStates(y, yp)
	fmt.Printf("bridge x(j,n)(j,A) vs x(j,A)(j,0): %s\n", d)
	if !layers.AgreeModulo(y, yp, j) {
		return fmt.Errorf("bridge does not agree modulo %d", j)
	}

	// Every synchronic layer is valence connected.
	o := layers.NewOracle(m)
	for _, init := range m.Inits() {
		if r := layers.AnalyzeLayer(m, o, init, phases); !r.ValenceConnected {
			return fmt.Errorf("S^rw layer not valence connected")
		}
	}
	fmt.Println("Lemma 5.3: all initial S^rw layers valence connected")

	// Corollary 5.4: refutation even in this near-synchronous submodel.
	w, err := layers.Certify(m, phases, 0)
	if err != nil {
		return err
	}
	if w.Kind == layers.OK {
		return fmt.Errorf("consensus certified in M^rw, contradicting Corollary 5.4")
	}
	fmt.Printf("Corollary 5.4: SMVote refuted — %s\n%s", w.Kind, layers.FormatExecution(w.Exec))
	return nil
}

func messagePassing(n int) error {
	const phases = 2
	fi := layers.AsyncMessagePassing(layers.MPFullInfo{}, n)
	fmt.Printf("== %s ==\n", fi.Name())

	// Transposition chain: [..pk,pk+1..] ~s [..{pk,pk+1}..] ~s [..pk+1,pk..].
	x := fi.Initial([]int{0, 1, 1})
	seq := fi.Sequential(x, []int{0, 1, 2})
	conc := fi.WithPair(x, []int{0, 1, 2}, 0)
	swp := fi.Sequential(x, []int{1, 0, 2})
	fmt.Printf("seq vs conc:  %s\n", layers.CompareStates(seq, conc))
	fmt.Printf("conc vs swap: %s\n", layers.CompareStates(conc, swp))

	// The minimal FLP diamond: two schedules, one state.
	yTop := fi.Sequential(fi.Sequential(x, []int{0, 1, 2}), []int{0, 1})
	yBot := fi.Sequential(fi.Sequential(x, []int{0, 1}), []int{2, 0, 1})
	if yTop.Key() != yBot.Key() {
		return fmt.Errorf("diamond states differ")
	}
	fmt.Println("diamond: x[p1..pn][p1..pn-1] == x[p1..pn-1][pn,p1..pn-1] (exact state equality)")

	// And the top states are NOT similar — the reason valence is needed.
	full := fi.Sequential(x, []int{0, 1, 2})
	head := fi.Sequential(x, []int{0, 1})
	fmt.Printf("diamond tops: %s\n", layers.CompareStates(full, head))

	// Refutation of the flooding heuristic under the permutation layering.
	p := layers.MPFlood{Phases: phases}
	m := layers.AsyncMessagePassing(p, n)
	w, err := layers.Certify(m, phases, 6_000_000)
	if err != nil {
		return err
	}
	if w.Kind == layers.OK {
		return fmt.Errorf("consensus certified in async MP")
	}
	fmt.Printf("FLP for S^per: MPFlood refuted — %s (witness: %d layers)\n", w.Kind, w.Exec.Len())
	return nil
}
