// Decisiontasks reproduces the Section 7 characterization: for a zoo of
// decision problems it evaluates the 1-thick-connectivity condition
// (Theorem 7.2 / Corollary 7.3) and compares against the literature's
// 1-resilient solvability verdicts; it then validates a covering against
// the actually-decided simplexes of a certified protocol's runs.
//
// Run with: go run ./examples/decisiontasks
package main

import (
	"fmt"
	"log"

	layers "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 3

	fmt.Printf("Section 7: 1-thick connectivity <=> 1-resilient solvability (n=%d)\n\n", n)
	for _, task := range layers.TaskZoo(n) {
		budget := task.SubproblemBudget
		if budget == 0 {
			budget = 1_000_000
		}
		_, ok, err := task.Problem.KThickConnected(1, budget)
		if err != nil {
			return fmt.Errorf("%s: %w", task.Problem.Name, err)
		}
		status := "UNSOLVABLE"
		if ok {
			status = "solvable"
		}
		agree := "matches literature"
		if ok != task.Solvable1Resilient {
			agree = "MISMATCH with literature"
		}
		fmt.Printf("  %-26s -> %-10s (%s)\n", task.Problem.Name, status, agree)
	}

	// Why consensus fails: the output complex of the full input set splits
	// into two 1-thick components (the constant simplexes).
	consensus := layers.BinaryConsensusTask(n)
	comps := consensus.Problem.OutputComplex(consensus.Problem.Inputs).ThickComponents(n, 1)
	fmt.Printf("\nconsensus output complex: %d 1-thick components:\n", len(comps))
	for _, c := range comps {
		fmt.Printf("  %v\n", c)
	}

	// Coverings (the generalized-valence vocabulary): collect the decided
	// simplexes of a certified protocol and check the consensus covering.
	p := layers.FloodSet{Rounds: 2}
	m := layers.SyncSt(p, n, 1)
	decided, err := layers.CollectDecidedSimplexes(m, 2, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\nFloodSet(2) over %s decides %d distinct output simplexes\n", m.Name(), len(decided))
	cover := layers.ConsensusCovering(n)
	for key, s := range decided {
		in0, in1 := cover.O0.Has(s), cover.O1.Has(s)
		if !in0 && !in1 {
			return fmt.Errorf("decided simplex %s escapes the covering", key)
		}
	}
	fmt.Println("every decided simplex lies in the consensus covering (agreement holds)")
	return nil
}
