// Earlydecision explores the decision-time landscape around the t+1 lower
// bound (the Section 6 closing discussion, quantified):
//
//   - plain FloodSet decides at exactly t+1 in every run;
//   - EarlyFloodSet (decide when a round reveals no new failure) certifies
//     at the same bound but shows the classical min(f+2, t+1) histogram —
//     most runs decide at layer 2;
//   - the bivalence-width profile shows the adversary's shrinking room:
//     how many reachable states per layer are still bivalent;
//   - in the multi-failure layering, wasted faults provably shorten the
//     bivalence window.
//
// Run with: go run ./examples/earlydecision
package main

import (
	"fmt"
	"log"

	layers "repro"
)

const (
	n  = 4
	t  = 2
	rb = t + 1 // the round bound
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var inits []layers.State

	// Plain FloodSet: flat histogram at t+1.
	plain := layers.SyncSt(layers.FloodSet{Rounds: rb}, n, t)
	inits = []layers.State{plain.Initial([]int{0, 1, 1, 1})}
	d, err := layers.MeasureDecisionDepth(plain, inits, rb, 0)
	if err != nil {
		return err
	}
	fmt.Printf("FloodSet(%d):      runs=%d  decision layers [%d,%d]  histogram=%v\n",
		rb, d.Runs, d.Min, d.Max, d.Histogram)

	// EarlyFloodSet: min(f+2, t+1) shape.
	early := layers.SyncSt(layers.EarlyFloodSet{MaxRounds: rb}, n, t)
	inits = []layers.State{early.Initial([]int{0, 1, 1, 1})}
	d, err = layers.MeasureDecisionDepth(early, inits, rb, 0)
	if err != nil {
		return err
	}
	fmt.Printf("EarlyFloodSet(%d): runs=%d  decision layers [%d,%d]  histogram=%v\n",
		rb, d.Runs, d.Min, d.Max, d.Histogram)
	if w, err := layers.Certify(early, rb, 0); err != nil || w.Kind != layers.OK {
		return fmt.Errorf("EarlyFloodSet not certified: %v %v", w, err)
	}
	fmt.Println("EarlyFloodSet certified at bound t+1 — early decisions are free")

	// The adversary's room: bivalent states per layer.
	o := layers.NewOracle(plain)
	p, err := layers.BivalenceWidth(plain, o, layers.DecreasingHorizon(rb, 0), rb, 0)
	if err != nil {
		return err
	}
	fmt.Println("\nbivalence width in S^t (states bivalent/total per layer):")
	for depth := range p.States {
		fmt.Printf("  layer %d: %d/%d bivalent, %d univalent-0, %d univalent-1\n",
			depth, p.Bivalent[depth], p.States[depth], p.Univalent0[depth], p.Univalent1[depth])
	}

	// Wasted faults: with two failures allowed per round (t=2), a bivalent
	// state at round r still satisfies r <= failures <= t-1.
	multi := layers.SyncStMulti(layers.FloodSet{Rounds: 3}, 4, 2, 2)
	om := layers.NewOracle(multi)
	g, err := layers.Explore(multi, 3, 0)
	if err != nil {
		return err
	}
	violations := 0
	bivalent := 0
	for depth := 0; depth <= 3; depth++ {
		for _, x := range g.StatesAtDepth(depth) {
			if !om.Bivalent(x, 3-depth) {
				continue
			}
			bivalent++
			f := 0
			for i := 0; i < 4; i++ {
				if x.FailedAt(i) {
					f++
				}
			}
			if f < depth || f > 1 {
				violations++
			}
		}
	}
	fmt.Printf("\nwasted faults (n=4, t=2, <=2 failures/round): %d bivalent states, %d violations of r <= f <= t-1\n",
		bivalent, violations)
	if violations > 0 {
		return fmt.Errorf("wasted-fault invariant violated")
	}
	return nil
}
