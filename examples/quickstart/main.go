// Quickstart: the layered analysis in five steps, on the single mobile
// failure model M^mf (Santoro–Widmayer), reproducing Corollary 5.2.
//
//  1. Build a model: M^mf with the S1 layering, running FloodSet.
//  2. Check the structural lemma: every layer S(x) is similarity and
//     valence connected (Lemma 5.1).
//  3. Find a bivalent initial state (Lemma 3.6).
//  4. Build the bivalent chain (Theorem 4.2): the adversary's run that
//     keeps the system undecided.
//  5. Certify: the framework finds the concrete violation any consensus
//     candidate must exhibit in this model.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	layers "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n, rounds = 3, 3

	// 1. Model: M^mf running FloodSet that decides after `rounds` rounds.
	p := layers.FloodSet{Rounds: rounds}
	m := layers.MobileS1(p, n)
	fmt.Printf("model: %s\n\n", m.Name())

	// 2. Lemma 5.1: every S1 layer over the initial states is similarity
	// connected, hence valence connected.
	o := layers.NewOracle(m)
	for _, x := range m.Inits() {
		r := layers.AnalyzeLayer(m, o, x, rounds)
		if !r.SimilarityConnected || !r.ValenceConnected {
			return fmt.Errorf("layer connectivity failed at %s", layers.FormatState(x))
		}
	}
	fmt.Printf("Lemma 5.1: all %d initial layers similarity+valence connected\n", len(m.Inits()))

	// 3. Lemma 3.6: a bivalent initial state exists.
	var init layers.State
	for _, x := range m.Inits() {
		if o.Bivalent(x, rounds) {
			init = x
			break
		}
	}
	if init == nil {
		return fmt.Errorf("no bivalent initial state (Lemma 3.6 violated)")
	}
	fmt.Printf("Lemma 3.6: found a bivalent initial state\n\n")

	// 4. Theorem 4.2: extend bivalence layer by layer.
	ch, err := layers.BivalentChain(m, o, layers.DecreasingHorizon(rounds, 1), rounds-1)
	if err != nil {
		return err
	}
	if ch.Stuck != nil {
		return fmt.Errorf("bivalent chain stuck at depth %d", ch.Reached)
	}
	fmt.Printf("Theorem 4.2: bivalent chain of %d layers (nobody decides):\n%s\n",
		ch.Reached, layers.FormatExecution(ch.Exec))

	// 5. Corollary 5.2: certification must find a violation.
	w, err := layers.Certify(m, rounds, 0)
	if err != nil {
		return err
	}
	if w.Kind == layers.OK {
		return fmt.Errorf("consensus certified in M^mf — impossible per Corollary 5.2")
	}
	fmt.Printf("Corollary 5.2: FloodSet refuted in M^mf — %s\n%s", w.Kind, layers.FormatExecution(w.Exec))
	return nil
}
