// Waitfree demonstrates the extension models of Corollary 7.3 — iterated
// immediate snapshot and atomic-snapshot shared memory — and the paper's
// point that the layering analysis transfers between models unchanged:
//
//   - IIS: each layer is an ordered partition; the one-round layer is the
//     chromatic subdivision (Fubini-many distinct views), it is similarity
//     connected, and consensus is refuted;
//   - snapshot memory under the permutation layering: the exact same
//     transposition-similarity chain and FLP diamond as in asynchronous
//     message passing, and the same refutation.
//
// Run with: go run ./examples/waitfree
package main

import (
	"fmt"
	"log"

	layers "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 3
	if err := iisDemo(n); err != nil {
		return err
	}
	fmt.Println()
	return snapshotDemo(n)
}

func iisDemo(n int) error {
	m := layers.IteratedImmediateSnapshot(layers.SMFullInfo{}, n)
	fmt.Printf("== %s ==\n", m.Name())

	x := m.Initial([]int{0, 1, 1})
	succs := m.Successors(x)
	distinct := map[string]bool{}
	for _, s := range succs {
		distinct[s.State.Key()] = true
	}
	fmt.Printf("one IIS round from a state: %d ordered partitions, %d distinct views\n",
		len(succs), len(distinct))
	fmt.Println("(13 = the Fubini number for n=3: the chromatic subdivision of the triangle)")

	// Block visibility, concretely.
	y := m.Apply(x, [][]int{{1}, {0, 2}})
	fmt.Printf("partition [{1},{0,2}]: %s\n", layers.FormatState(y))
	fmt.Println("process 1 went first alone: it saw only itself; 0 and 2 saw everyone")

	// Refutation.
	cand := layers.IteratedImmediateSnapshot(layers.SMVote{Phases: 1}, n)
	w, err := layers.Certify(cand, 1, 0)
	if err != nil {
		return err
	}
	if w.Kind == layers.OK {
		return fmt.Errorf("consensus certified in IIS")
	}
	fmt.Printf("consensus in IIS: %s\n%s", w.Kind, layers.FormatExecution(w.Exec))
	return nil
}

func snapshotDemo(n int) error {
	fi := layers.SnapshotMemory(layers.SMFullInfo{}, n)
	fmt.Printf("== %s ==\n", fi.Name())

	x := fi.Initial([]int{0, 1, 1})
	seq := fi.Sequential(x, []int{0, 1, 2})
	conc := fi.WithPair(x, []int{0, 1, 2}, 0)
	fmt.Printf("seq vs immediate-snapshot block: %s\n", layers.CompareStates(seq, conc))

	yTop := fi.Sequential(fi.Sequential(x, []int{0, 1, 2}), []int{0, 1})
	yBot := fi.Sequential(fi.Sequential(x, []int{0, 1}), []int{2, 0, 1})
	if yTop.Key() != yBot.Key() {
		return fmt.Errorf("snapshot diamond states differ")
	}
	fmt.Println("diamond: exact state equality, as in message passing")

	cand := layers.SnapshotMemory(layers.SMVote{Phases: 2}, n)
	w, err := layers.Certify(cand, 2, 0)
	if err != nil {
		return err
	}
	if w.Kind == layers.OK {
		return fmt.Errorf("consensus certified in the snapshot model")
	}
	fmt.Printf("consensus in snapshot memory: %s (witness: %d layers)\n", w.Kind, w.Exec.Len())
	return nil
}
