// Synclowerbound reproduces the Section 6 analysis of the t-resilient
// synchronous model end to end, and then runs the same protocol as a real
// concurrent cluster with injected failures:
//
//   - certify FloodSet(t+1) over the S^t submodel (the classical upper
//     bound holds);
//   - refute FloodSet(t) with a concrete adversary run (Corollary 6.3: the
//     t+1-round lower bound);
//   - build the Lemma 6.1 bivalent chain, watching the adversary spend one
//     failure per round;
//   - execute FloodSet(t+1) as n goroutine processes with a crash injected,
//     confirming the survivors agree.
//
// Run with: go run ./examples/synclowerbound
package main

import (
	"fmt"
	"log"

	layers "repro"
)

const (
	n = 4
	t = 2
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Upper bound: t+1 rounds suffice.
	good := layers.FloodSet{Rounds: t + 1}
	mGood := layers.SyncSt(good, n, t)
	w, err := layers.Certify(mGood, t+1, 0)
	if err != nil {
		return err
	}
	fmt.Printf("upper bound:  %s with %d rounds over %s: %v\n", good.Name(), t+1, mGood.Name(), w.Kind)
	if w.Kind != layers.OK {
		return fmt.Errorf("t+1-round FloodSet refuted: %s", w.Detail)
	}

	// Lower bound: t rounds cannot work (Corollary 6.3).
	fast := layers.FloodSet{Rounds: t}
	mFast := layers.SyncSt(fast, n, t)
	w, err = layers.Certify(mFast, t, 0)
	if err != nil {
		return err
	}
	fmt.Printf("lower bound:  %s with %d rounds: %v\n", fast.Name(), t, w.Kind)
	if w.Kind == layers.OK {
		return fmt.Errorf("t-round FloodSet certified, contradicting Corollary 6.3")
	}
	fmt.Printf("adversary run:\n%s\n", layers.FormatExecution(w.Exec))

	// Lemma 6.1: the bivalent chain against the correct protocol.
	o := layers.NewOracle(mGood)
	ch, err := layers.BivalentChain(mGood, o, layers.DecreasingHorizon(t+1, 1), t-1)
	if err != nil {
		return err
	}
	if ch.Stuck != nil {
		return fmt.Errorf("Lemma 6.1 chain stuck at %d", ch.Reached)
	}
	fmt.Printf("Lemma 6.1 chain (one failure per round keeps bivalence):\n%s\n",
		layers.FormatExecution(ch.Exec))

	// Concurrent execution: run FloodSet(t+1) as goroutine processes; crash
	// process 0 after its first round of sends reaches only process 1.
	inputs := []int{0, 1, 1, 1}
	cluster := layers.NewCluster(good, inputs)
	defer cluster.Close()
	drop := func(round, from, to int) bool {
		if from != 0 {
			return false
		}
		if round == 1 {
			return to != 1 // first faulty round: only process 1 hears it
		}
		return true // silenced forever after
	}
	decisions, err := cluster.RunRounds(t+1, drop)
	if err != nil {
		return err
	}
	fmt.Printf("cluster run with crash injection: decisions = %v\n", decisions)
	for i := 1; i < n; i++ {
		if decisions[i] != decisions[1] {
			return fmt.Errorf("survivors disagree: %v", decisions)
		}
	}
	fmt.Println("survivors agree — FloodSet(t+1) tolerates the injected crash")
	return nil
}
