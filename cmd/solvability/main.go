// Command solvability evaluates the Section 7 characterization on the
// decision-task zoo: for each task it reports whether the task is 1-thick
// connected (equivalently, per Corollary 7.3, 1-resiliently solvable in all
// of the paper's models and submodels) together with the literature's
// verdict, and shows the Theorem 7.7 diameter bound for t-round synchronous
// solvability.
//
// Usage:
//
//	solvability -n 3
//	solvability -n 3 -t 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/decision"
	"repro/internal/tasks"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "solvability:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("solvability", flag.ContinueOnError)
	var (
		n      = fs.Int("n", 3, "number of processes (2 or 3 for exhaustive subproblem search)")
		t      = fs.Int("t", 1, "rounds for the Theorem 7.7 diameter bound")
		budget = fs.Int("budget", 1_000_000, "subproblem search budget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Printf("1-thick connectivity (<=> 1-resilient solvability, Cor 7.3), n=%d:\n", *n)
	fmt.Printf("%-28s %-12s %-12s %-6s %s\n", "task", "checker", "literature", "agree", "min-k")
	mismatches := 0
	for _, task := range tasks.Zoo(*n) {
		b := task.SubproblemBudget
		if b == 0 {
			b = *budget
		}
		_, ok, err := task.Problem.KThickConnected(1, b)
		verdict := "solvable"
		if err != nil {
			verdict = "error: " + err.Error()
		} else if !ok {
			verdict = "unsolvable"
		}
		want := "solvable"
		if !task.Solvable1Resilient {
			want = "unsolvable"
		}
		agree := "yes"
		if err != nil || ok != task.Solvable1Resilient {
			agree = "NO"
			mismatches++
		}
		minK := "?"
		if k, err := task.Problem.MinThickness(b); err == nil {
			minK = fmt.Sprintf("%d", k)
		}
		fmt.Printf("%-28s %-12s %-12s %-6s %s\n", task.Problem.Name, verdict, want, agree, minK)
	}

	fmt.Printf("\nTheorem 7.7 diameter bound d_X^t for t=%d rounds, d(I)=%d inputs diameter:\n", *t, *n)
	for dI := 1; dI <= *n; dI++ {
		fmt.Printf("  d(I)=%d: d_X^%d = %d\n", dI, *t, decision.DiameterBound(dI, *n, *t))
	}
	if mismatches > 0 {
		return fmt.Errorf("%d verdict mismatch(es)", mismatches)
	}
	return nil
}
