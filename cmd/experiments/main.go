// Command experiments regenerates the measured tables in EXPERIMENTS.md:
// it runs every experiment (E1..E11) and prints the paper-claim-vs-measured
// record. All computations are deterministic; expect the output to match
// the committed EXPERIMENTS.md numbers.
//
// Usage:
//
//	experiments                          # run everything
//	experiments -only E5                 # run one experiment
//	experiments -stats -journal run.jsonl  # with engine counters + event journal
//
// Runs are interruptible: SIGINT (or an elapsed -deadline) stops the
// in-flight engine at its next poll point, saves the -checkpoint
// snapshot, and exits nonzero; -resume picks the interrupted computation
// back up with results identical to an uninterrupted run:
//
//	experiments -only E5 -deadline 10s -checkpoint e5.ckpt
//	experiments -only E5 -resume e5.ckpt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	layers "repro"
	"repro/internal/cli"
	"repro/internal/decision"
	"repro/internal/protocols"
	"repro/internal/tasks"
	"repro/internal/valence"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("only", "", "run a single experiment (E1..E11)")
	obsFlags := cli.RegisterObs(fs)
	resFlags := cli.RegisterResilience(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopObs, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer stopObs()
	ctx, stopRes, err := resFlags.Start()
	if err != nil {
		return err
	}
	defer stopRes()
	all := []struct {
		id  string
		fn  func(*layers.Ctx) error
		hdr string
	}{
		{"E1", e1, "Lemma 3.6: structure of Con_0"},
		{"E2", e2, "Lemma 5.1 + Corollary 5.2: mobile failures"},
		{"E3", e3, "Lemma 5.3 + Corollary 5.4: shared memory, synchronic layering"},
		{"E4", e4, "Permutation layering (async message passing)"},
		{"E5", e5, "Corollary 6.3: the t+1-round lower bound"},
		{"E6", e6, "Lemma 6.4: fast-protocol univalence"},
		{"E7", e7, "Theorem 7.2 / Corollary 7.3: 1-thick connectivity"},
		{"E8", e8, "Lemma 7.6 / Theorem 7.7: diameter growth"},
		{"E9", e9, "Extensions: wasted faults, early decision, IIS subdivision"},
		{"E10", e10, "General decision problems: the k-set boundary"},
		{"E11", e11, "Common knowledge at decision (Dwork–Moses)"},
	}
	// With -retries the per-experiment run goes through the supervisor:
	// a retryable failure (panic, deadline, chaos fault) backs off,
	// resumes from the attempt's checkpoint, and tries again; repeated
	// budget or memory-pressure errors step down the degradation ladder.
	sup := resFlags.Supervisor()
	runOne := func(id string, fn func(*layers.Ctx) error) error {
		if resFlags.Retries <= 0 {
			return fn(ctx)
		}
		_, err := sup.Run(ctx, id, func(a *layers.Attempt) error {
			return fn(a.Ctx)
		})
		return err
	}
	for _, e := range all {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		fmt.Printf("== %s — %s ==\n", e.id, e.hdr)
		if err := runOne(e.id, e.fn); err != nil {
			return resFlags.Finish(fmt.Errorf("%s: %w", e.id, err))
		}
		fmt.Println()
	}
	return nil
}

func e1(ctx *layers.Ctx) error {
	fmt.Println("n  |Con0|  s-diam  connected  bivalent-init")
	for n := 2; n <= 5; n++ {
		m := layers.MobileS1(layers.FloodSet{Rounds: 2}, n)
		inits := m.Inits()
		d, conn := valence.SetSDiameter(inits)
		g, err := layers.ExploreIDCtx(ctx, m, 2, 0, 0)
		if err != nil {
			return err
		}
		f, err := layers.NewFieldParallelCtx(ctx, g, 0)
		if err != nil {
			return err
		}
		found := false
		for _, u := range g.Layer(0) {
			if f.Bivalent(u) {
				found = true
				break
			}
		}
		fmt.Printf("%d  %-6d  %-6d  %-9v  %v\n", n, len(inits), d, conn, found)
		if !conn || !found {
			return fmt.Errorf("n=%d: Lemma 3.6 failed", n)
		}
	}
	return nil
}

func e2(ctx *layers.Ctx) error {
	fmt.Println("n  B  layers-sim-conn  verdict               witness-depth  visits")
	for _, cfg := range []struct{ n, b int }{{3, 2}, {3, 3}, {4, 2}} {
		m := layers.MobileS1(layers.FloodSet{Rounds: cfg.b}, cfg.n)
		o := layers.NewOracle(m)
		simOK := true
		for _, x := range m.Inits() {
			if r := layers.AnalyzeLayer(m, o, x, cfg.b); !r.SimilarityConnected || !r.ValenceConnected {
				simOK = false
			}
		}
		w, err := layers.CertifyFastCtx(ctx, m, cfg.b, 0)
		if err != nil {
			return err
		}
		if w.Kind == layers.OK {
			return fmt.Errorf("consensus certified in M^mf")
		}
		fmt.Printf("%d  %d  %-15v  %-20s  %-13d  %d\n", cfg.n, cfg.b, simOK, w.Kind, w.Exec.Len(), w.Explored)
	}
	return nil
}

func e3(ctx *layers.Ctx) error {
	const n = 3
	// Bridge check over all inputs and j.
	m := layers.SharedMemory(layers.SMVote{Phases: 2}, n)
	bridges := 0
	for a := 0; a < 1<<n; a++ {
		x := m.Initial([]int{a & 1, (a >> 1) & 1, (a >> 2) & 1})
		for j := 0; j < n; j++ {
			y := m.ApplyAbsent(m.Apply(x, j, n), j)
			yp := m.Apply(m.ApplyAbsent(x, j), j, 0)
			if !layers.AgreeModulo(y, yp, j) {
				return fmt.Errorf("bridge failed at inputs %03b j=%d", a, j)
			}
			bridges++
		}
	}
	fmt.Printf("bridge x(j,n)(j,A) ≡_j x(j,A)(j,0): %d/%d instances hold\n", bridges, bridges)
	fmt.Println("n  P  verdict")
	for _, ph := range []int{1, 2} {
		mm := layers.SharedMemory(layers.SMVote{Phases: ph}, n)
		w, err := layers.Certify(mm, ph, 0)
		if err != nil {
			return err
		}
		if w.Kind == layers.OK {
			return fmt.Errorf("consensus certified in M^rw")
		}
		fmt.Printf("%d  %d  %s\n", n, ph, w.Kind)
	}
	return nil
}

func e4(ctx *layers.Ctx) error {
	const n = 3
	fi := layers.AsyncMessagePassing(layers.MPFullInfo{}, n)
	x := fi.Initial([]int{0, 1, 1})
	yTop := fi.Sequential(fi.Sequential(x, []int{0, 1, 2}), []int{0, 1})
	yBot := fi.Sequential(fi.Sequential(x, []int{0, 1}), []int{2, 0, 1})
	fmt.Printf("diamond exact state equality: %v\n", yTop.Key() == yBot.Key())
	succs := fi.Successors(x)
	fmt.Printf("|S^per(x)| labeled actions at n=%d: %d\n", n, len(succs))
	fmt.Println("n  P  verdict")
	for _, ph := range []int{1, 2} {
		m := layers.AsyncMessagePassing(layers.MPFlood{Phases: ph}, n)
		w, err := layers.Certify(m, ph, 0)
		if err != nil {
			return err
		}
		if w.Kind == layers.OK {
			return fmt.Errorf("consensus certified in async MP")
		}
		fmt.Printf("%d  %d  %s\n", n, ph, w.Kind)
	}
	// The IIS extension model (Corollary 7.3's list).
	iisM := layers.IteratedImmediateSnapshot(layers.SMVote{Phases: 1}, n)
	w, err := layers.Certify(iisM, 1, 0)
	if err != nil {
		return err
	}
	if w.Kind == layers.OK {
		return fmt.Errorf("consensus certified in IIS")
	}
	fmt.Printf("IIS extension model: %s\n", w.Kind)
	return nil
}

func e5(ctx *layers.Ctx) error {
	fmt.Println("n  t  FloodSet(t+1)  visits  FloodSet(t)           witness-depth")
	for _, cfg := range []struct{ n, t int }{{3, 1}, {4, 1}, {4, 2}, {5, 3}, {6, 2}} {
		// The t-round protocol is refuted first and the t+1-round one
		// certified second, so a -journal run's final certify.done event
		// carries the Explored count this table prints.
		fast := layers.SyncSt(layers.FloodSet{Rounds: cfg.t}, cfg.n, cfg.t)
		wf, err := layers.CertifyFastCtx(ctx, fast, cfg.t, 50_000_000)
		if err != nil {
			return err
		}
		good := layers.SyncSt(layers.FloodSet{Rounds: cfg.t + 1}, cfg.n, cfg.t)
		wg, err := layers.CertifyFastCtx(ctx, good, cfg.t+1, 50_000_000)
		if err != nil {
			return err
		}
		if wg.Kind != layers.OK || wf.Kind == layers.OK {
			return fmt.Errorf("n=%d t=%d: lower-bound story failed", cfg.n, cfg.t)
		}
		fmt.Printf("%d  %d  %-13s  %-6d  %-20s  %d\n",
			cfg.n, cfg.t, wg.Kind, wg.Explored, wf.Kind, wf.Exec.Len())
	}
	return nil
}

func e6(ctx *layers.Ctx) error {
	fmt.Println("n  t  states-checked  all-univalent")
	for _, cfg := range []struct{ n, t int }{{3, 1}, {4, 2}} {
		rounds := cfg.t + 1
		p := layers.FloodSet{Rounds: rounds}
		m := layers.SyncSt(p, cfg.n, cfg.t)
		g, err := layers.ExploreCtx(ctx, m, rounds-1, 0)
		if err != nil {
			return err
		}
		o := layers.NewOracle(m)
		checked := 0
		for d := 0; d < rounds; d++ {
			for _, x := range g.StatesAtDepth(d) {
				succs := m.Successors(x)
				if _, ok := o.Univalent(succs[0].State, rounds-d-1); !ok {
					return fmt.Errorf("n=%d t=%d: non-univalent failure-free successor at depth %d", cfg.n, cfg.t, d)
				}
				checked++
			}
		}
		fmt.Printf("%d  %d  %-14d  true\n", cfg.n, cfg.t, checked)
	}
	return nil
}

func e7(ctx *layers.Ctx) error {
	for _, n := range []int{2, 3} {
		fmt.Printf("n=%d:\n", n)
		for _, task := range tasks.Zoo(n) {
			budget := task.SubproblemBudget
			if budget == 0 {
				budget = 1_000_000
			}
			_, ok, err := task.Problem.KThickConnected(1, budget)
			if err != nil {
				return fmt.Errorf("%s: %w", task.Problem.Name, err)
			}
			verdict := "unsolvable"
			if ok {
				verdict = "solvable"
			}
			mark := "ok"
			if ok != task.Solvable1Resilient {
				mark = "MISMATCH"
			}
			fmt.Printf("  %-28s %-11s (%s)\n", task.Problem.Name, verdict, mark)
		}
	}
	return nil
}

func e8(ctx *layers.Ctx) error {
	const n, t, depth = 3, 2, 2
	m := layers.SyncSt(protocols.FullInfo{}, n, t)
	g, err := layers.ExploreCtx(ctx, m, depth, 0)
	if err != nil {
		return err
	}
	fmt.Println("depth  states  s-diam  max-layer-dY  lemma7.6-bound  paper-dY=2(n-m)")
	dPrev, _ := valence.SetSDiameter(g.StatesAtDepth(0))
	fmt.Printf("%-5d  %-6d  %-6d  %-12s  %-14s  %s\n", 0, len(g.StatesAtDepth(0)), dPrev, "-", "-", "-")
	for d := 1; d <= depth; d++ {
		dY := 0
		for _, x := range g.StatesAtDepth(d - 1) {
			states, _ := valence.Layer(m, x)
			if ld, _ := valence.SetSDiameter(states); ld > dY {
				dY = ld
			}
		}
		bound := dPrev*dY + dPrev + dY
		dCur, _ := valence.SetSDiameter(g.StatesAtDepth(d))
		if dCur > bound {
			return fmt.Errorf("depth %d: measured %d exceeds bound %d", d, dCur, bound)
		}
		fmt.Printf("%-5d  %-6d  %-6d  %-12d  %-14d  %d\n",
			d, len(g.StatesAtDepth(d)), dCur, dY, bound, 2*(n-(d-1)))
		dPrev = dCur
	}
	fmt.Printf("Theorem 7.7 arithmetic: d(I)=3, n=3: t=1 -> %d, t=2 -> %d\n",
		decision.DiameterBound(3, 3, 1), decision.DiameterBound(3, 3, 2))
	return nil
}

func e9(ctx *layers.Ctx) error {
	// E9a: wasted faults in the multi-failure layering.
	{
		const n, tt, c = 4, 2, 2
		rounds := tt + 1
		m := layers.SyncStMulti(protocols.FloodSet{Rounds: rounds}, n, tt, c)
		g, err := layers.ExploreCtx(ctx, m, rounds, 0)
		if err != nil {
			return err
		}
		o := layers.NewOracle(m)
		checked, bivalent := 0, 0
		for d := 0; d <= rounds; d++ {
			for _, x := range g.StatesAtDepth(d) {
				checked++
				if !o.Bivalent(x, rounds-d) {
					continue
				}
				bivalent++
				f := 0
				for i := 0; i < n; i++ {
					if x.FailedAt(i) {
						f++
					}
				}
				if f < d || f > tt-1 {
					return fmt.Errorf("bivalent state at round %d with %d failures violates r <= f <= t-1", d, f)
				}
			}
		}
		fmt.Printf("wasted faults (n=%d t=%d c=%d): %d states, %d bivalent, all satisfy r <= f <= t-1\n",
			n, tt, c, checked, bivalent)
	}
	// E9b: early decision.
	{
		const n, tt = 4, 2
		m := layers.SyncSt(layers.EarlyFloodSet{MaxRounds: tt + 1}, n, tt)
		w, err := layers.Certify(m, tt+1, 0)
		if err != nil {
			return err
		}
		r := &layers.Runner{Model: m, MaxLayers: tt + 2}
		out, err := r.Run(m.Inits()[1], layers.FirstAction{})
		if err != nil {
			return err
		}
		fmt.Printf("early decision (n=%d t=%d): certify=%s, failure-free decision layer=%d (plain FloodSet: %d)\n",
			n, tt, w.Kind, out.DecisionLayer, tt+1)
		if w.Kind != layers.OK {
			return fmt.Errorf("EarlyFloodSet refuted")
		}
	}
	// E9c: the IIS chromatic subdivision.
	{
		const n = 3
		m := layers.IteratedImmediateSnapshot(layers.SMFullInfo{}, n)
		st := m.Stats(m.Initial([]int{0, 1, 1}))
		fmt.Printf("IIS one-round view complex (n=%d): %d top simplexes, %d vertices, thick-connected=%v, pseudomanifold=%v\n",
			n, st.TopSimplexes, st.Vertices, st.ThickConnected, st.Pseudomanifold)
		if st.TopSimplexes != 13 || !st.ThickConnected || !st.Pseudomanifold {
			return fmt.Errorf("chromatic subdivision structure wrong")
		}
	}
	return nil
}

func e10(ctx *layers.Ctx) error {
	const n = 3
	m := layers.MobileS1(layers.FloodSet{Rounds: 1}, n)
	// Ternary inputs.
	var inits []layers.State
	for a := 0; a < 27; a++ {
		v := a
		in := make([]int, n)
		for i := 0; i < n; i++ {
			in[i] = v % 3
			v /= 3
		}
		inits = append(inits, m.Initial(in))
	}
	two := tasks.KSetAgreement(n, 2).Problem.Delta
	one := tasks.BinaryConsensus(n).Problem.Delta
	w2, err := layers.CertifyTask(m, inits, two, 1, 0)
	if err != nil {
		return err
	}
	w1, err := layers.CertifyTask(m, inits, one, 1, 0)
	if err != nil {
		return err
	}
	fmt.Printf("M^mf + 1-round flooding, ternary inputs: 2-set agreement = %s; consensus = %s\n", w2.Kind, w1.Kind)
	if w2.Kind != layers.TaskOK || w1.Kind == layers.TaskOK {
		return fmt.Errorf("k-set boundary story failed")
	}
	return nil
}

func e11(ctx *layers.Ctx) error {
	const n, tt = 3, 1
	rounds := tt + 1
	m := layers.SyncSt(layers.FloodSet{Rounds: rounds}, n, tt)
	g, err := layers.ExploreIDCtx(ctx, m, rounds, 0, 0)
	if err != nil {
		return err
	}
	states := make([]layers.State, 0, len(g.Layer(rounds)))
	for _, u := range g.Layer(rounds) {
		states = append(states, g.States[u])
	}
	classes := layers.NewKnowledgeClassesLayer(g, rounds)
	ck := 0
	for _, x := range states {
		v := -1
		for i := 0; i < n; i++ {
			if x.FailedAt(i) {
				continue
			}
			if got, ok := x.Decided(i); ok {
				v = got
				break
			}
		}
		if v >= 0 && classes.CommonKnowledge(x.Key(), layers.DecidedValueFact(v)) {
			ck++
		}
	}
	fmt.Printf("decision round (n=%d t=%d): %d states in %d CK classes; decided value common knowledge at %d/%d states\n",
		n, tt, len(states), classes.Count(), ck, len(states))
	if ck != len(states) {
		return fmt.Errorf("decision without common knowledge")
	}
	return nil
}
