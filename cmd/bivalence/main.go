// Command bivalence runs the two executable faces of the paper's
// impossibility machinery against a chosen model:
//
//  1. the certifier, which exhaustively checks the consensus requirements
//     over all runs up to the protocol's decision bound and prints either
//     OK or a violation witness run; and
//  2. the bivalent-chain construction of Theorem 4.2, which builds and
//     prints an execution all of whose states are bivalent.
//
// Usage:
//
//	bivalence -model mobile -n 3 -bound 2
//	bivalence -model shmem -n 3 -bound 1
//	bivalence -model asyncmp -n 3 -bound 1 -target 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/valence"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bivalence:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bivalence", flag.ContinueOnError)
	var (
		model   = fs.String("model", "mobile", "model: "+strings.Join(cli.Models(), "|"))
		n       = fs.Int("n", 3, "number of processes")
		t       = fs.Int("t", 1, "failure budget (sync-st)")
		bound   = fs.Int("bound", 2, "protocol decision bound (layers)")
		target  = fs.Int("target", -1, "bivalent chain target depth (default bound-1)")
		visits  = fs.Int("budget", 5_000_000, "certification visit budget (0 = unbounded)")
		jsonOut = fs.Bool("json", false, "emit machine-readable JSON (keys replayable through the model)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := cli.Build(cli.Spec{Model: *model, N: *n, T: *t, Bound: *bound})
	if err != nil {
		return err
	}

	w, err := valence.Certify(m, *bound, *visits)
	if err != nil {
		return err
	}
	if *jsonOut {
		return runJSON(m, w, *bound, *target)
	}
	fmt.Printf("== certifying consensus over %s (bound %d) ==\n", m.Name(), *bound)
	fmt.Printf("verdict: %s\n", w.Kind)
	if w.Kind != valence.OK {
		fmt.Printf("detail:  %s\n", w.Detail)
		fmt.Printf("witness run (%d layers):\n%s", w.Exec.Len(), trace.FormatExecution(w.Exec))
	}

	tgt := *target
	if tgt < 0 {
		tgt = *bound - 1
	}
	if tgt < 0 {
		tgt = 0
	}
	fmt.Printf("\n== bivalent chain (Theorem 4.2), target %d layers ==\n", tgt)
	o := valence.NewOracle(m)
	ch, err := valence.BivalentChain(m, o, valence.DecreasingHorizon(*bound, 1), tgt)
	if err != nil {
		return err
	}
	fmt.Printf("reached %d of %d layers (valence memo: %d entries)\n", ch.Reached, tgt, o.MemoLen())
	fmt.Print(trace.FormatExecution(ch.Exec))
	if ch.Stuck != nil {
		fmt.Printf("chain stuck: layer had %d states, %d bivalent, valence-connected=%v\n",
			len(ch.Stuck.States), len(ch.Stuck.BivalentIdx), ch.Stuck.ValenceConnected)
		return fmt.Errorf("bivalent chain could not reach target depth")
	}
	return nil
}

// runJSON emits the certification witness and the bivalent chain as one
// JSON document, with exact state keys so the runs replay through the
// model.
func runJSON(m core.Model, w *valence.Witness, bound, target int) error {
	if target < 0 {
		target = bound - 1
	}
	if target < 0 {
		target = 0
	}
	o := valence.NewOracle(m)
	ch, err := valence.BivalentChain(m, o, valence.DecreasingHorizon(bound, 1), target)
	if err != nil {
		return err
	}
	key := func(x core.State) string { return x.Key() }
	doc := struct {
		Model   string              `json:"model"`
		Bound   int                 `json:"bound"`
		Certify *report.WitnessJSON `json:"certify"`
		Chain   *report.ChainJSON   `json:"bivalentChain"`
	}{
		Model:   m.Name(),
		Bound:   bound,
		Certify: report.NewWitness(w, key),
		Chain:   report.NewChain(ch, key),
	}
	return report.Write(os.Stdout, doc)
}
