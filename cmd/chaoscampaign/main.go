// Command chaoscampaign proves the engine's self-healing contract end to
// end, two ways:
//
// The campaign sweep (the default) runs the full layered-analysis
// pipeline — explore, certify, field sweep, decision valences, knowledge
// partition — once fault-free for a reference summary, then once per
// (seed × fault point × fault kind) cell with a seeded chaos plan armed
// and the run supervised by resilient.Supervisor: retries back off and
// resume from the attempt's checkpoint, budget/memory faults step down
// the degradation ladder (fewer workers, then the scalar field kernel).
// Every supervised run must recover and reproduce the reference summary
// bit for bit — verdict, witness, Explored, field masks, knowledge
// classes. The report is emitted as JSON (-out) and the process exits 1
// on any unrecovered failure or divergent recovery:
//
//	chaoscampaign -seeds 18 -retries 6 -backoff 1ms -out campaign.json
//
// The crash harness (-crash) proves checkpoint durability the hard way:
// it re-executes itself as a child (-crash-child) that hammers checkpoint
// generations through resilient.Store, SIGKILLs the child mid-write,
// and then requires that the store still loads an intact generation whose
// resumed exploration re-derives the fault-free graph. It also exercises
// the torn-write fallback deterministically by truncating and bit-flipping
// the newest generation:
//
//	chaoscampaign -crash -crash-kills 4
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/chaos"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/knowledge"
	"repro/internal/resilient"
	"repro/internal/valence"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaoscampaign:", err)
		os.Exit(1)
	}
}

type options struct {
	spec    cli.Spec
	depth   int
	workers int
	seeds   int
	maxHit  uint64
	out     string
	res     *cli.ResilienceFlags

	crash      bool
	crashChild bool
	crashDir   string
	crashKills int
}

func run(args []string) error {
	fs := flag.NewFlagSet("chaoscampaign", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.spec.Model, "model", "mobile", fmt.Sprintf("model family %v", cli.Models()))
	fs.IntVar(&o.spec.N, "n", 3, "number of processes")
	fs.IntVar(&o.spec.T, "t", 1, "failure budget (sync-st only)")
	fs.IntVar(&o.spec.Bound, "bound", 2, "protocol decision bound")
	fs.IntVar(&o.depth, "depth", 2, "exploration depth")
	fs.IntVar(&o.workers, "workers", 2, "full-width worker count attempts start from")
	fs.IntVar(&o.seeds, "seeds", 18, "seeds swept; cases = seeds x 7 fault points x 4 fault kinds")
	maxHit := fs.Uint64("max-hit", 3, "seeded fault hits fall in [1, max-hit]")
	fs.StringVar(&o.out, "out", "", "write the JSON campaign report to `file`")
	fs.BoolVar(&o.crash, "crash", false, "run the subprocess SIGKILL crash harness instead of the sweep")
	fs.BoolVar(&o.crashChild, "crash-child", false, "internal: run as the crash harness's checkpoint-hammering child")
	fs.StringVar(&o.crashDir, "crash-dir", "", "crash harness working directory (default: a temp dir)")
	fs.IntVar(&o.crashKills, "crash-kills", 4, "how many SIGKILL rounds the crash harness runs")
	obsFlags := cli.RegisterObs(fs)
	o.res = cli.RegisterResilience(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o.maxHit = *maxHit
	if o.res.Retries <= 0 {
		// The sweep is pointless without retry: recovery is what it tests.
		o.res.Retries = 6
	}
	if o.res.Backoff <= 0 {
		o.res.Backoff = time.Millisecond
	}
	if o.crashChild {
		return runCrashChild(o)
	}
	stopObs, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer stopObs()
	if o.crash {
		return runCrash(o)
	}
	return runCampaign(o)
}

// hashBytes summarizes a byte slice for compact equality checks.
func hashBytes(b []uint8) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

func graphSummary(g *core.IDGraph) string {
	keys := make([]byte, 0, 64*g.Len())
	for _, k := range g.Keys {
		keys = append(keys, k...)
		keys = append(keys, 0)
	}
	return fmt.Sprintf("nodes=%d edges=%d depth=%d keys=%s",
		g.Len(), g.NumEdges(), g.Depth, hashBytes(keys))
}

func witnessSummary(w *valence.Witness) string {
	s := fmt.Sprintf("kind=%v explored=%d detail=%q", w.Kind, w.Explored, w.Detail)
	if w.Exec != nil {
		s += fmt.Sprintf(" init=%s steps=%d", w.Exec.Init.Key(), w.Exec.Len())
	}
	return s
}

// pipeline runs the full layered analysis under one attempt, honoring the
// attempt's degraded worker width and kernel choice, and summarizes every
// result. The summary must be bit-identical across fault-free, recovered,
// and degraded runs — that is the property the campaign asserts.
func pipeline(a *resilient.Attempt, m core.Model, depth, n int) (string, error) {
	g, err := core.ExploreIDCtx(a.Ctx, m, depth, 0, a.Workers)
	if err != nil {
		return "", err
	}
	w, err := valence.CertifyGraphCtx(a.Ctx, g, 0)
	if err != nil {
		return "", err
	}
	var f *valence.Field
	if a.Scalar {
		f, err = valence.NewFieldScalarCtx(a.Ctx, g)
	} else {
		f, err = valence.NewFieldParallelCtx(a.Ctx, g, a.Workers)
	}
	if err != nil {
		return "", err
	}
	masks, err := decision.FieldValencesCtx(a.Ctx, g, decision.ConsensusCovering(n))
	if err != nil {
		return "", err
	}
	c, err := knowledge.NewClassesCtx(a.Ctx, g.States)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s | %s | field=%s | decision=%s | classes=%d",
		graphSummary(g), witnessSummary(w), hashBytes(f.Masks()), hashBytes(masks), c.Count()), nil
}

// caseResult is one campaign cell's outcome.
type caseResult struct {
	Seed      uint64 `json:"seed"`
	Point     string `json:"point"`
	Kind      string `json:"kind"`
	Hit       uint64 `json:"hit"`
	Fired     int    `json:"fired"`
	Attempts  int    `json:"attempts"`
	Retries   int    `json:"retries"`
	Resumes   int    `json:"resumes"`
	Degrades  int    `json:"degrades"`
	Recovered bool   `json:"recovered"`
	Identical bool   `json:"identical"`
	Err       string `json:"err,omitempty"`
}

// report is the JSON campaign report.
type report struct {
	Model     string       `json:"model"`
	N         int          `json:"n"`
	Depth     int          `json:"depth"`
	Workers   int          `json:"workers"`
	Seeds     int          `json:"seeds"`
	Cases     int          `json:"cases"`
	Fired     int          `json:"fired"`
	Recovered int          `json:"recovered"`
	Identical int          `json:"identical"`
	Failures  int          `json:"failures"`
	Reference string       `json:"reference"`
	Results   []caseResult `json:"results"`
}

// campaignCase is one pre-derived cell of the sweep.
type campaignCase struct {
	seed  uint64
	point string
	kind  chaos.Kind
}

func runCampaign(o options) error {
	m, err := cli.Build(o.spec)
	if err != nil {
		return err
	}
	ctx, stopRes, err := o.res.Start()
	if err != nil {
		return err
	}
	defer stopRes()

	// Fault-free reference, chaos disarmed, full width.
	ref, err := pipeline(&resilient.Attempt{Ctx: ctx, N: 1, Workers: o.workers}, m, o.depth, o.spec.N)
	if err != nil {
		return fmt.Errorf("fault-free reference run failed: %w", err)
	}

	kinds := []chaos.Kind{chaos.KindPanic, chaos.KindDelay, chaos.KindCancel, chaos.KindBudget}
	var cases []campaignCase
	for seed := 1; seed <= o.seeds; seed++ {
		for _, point := range chaos.Points() {
			for _, kind := range kinds {
				cases = append(cases, campaignCase{seed: uint64(seed), point: point, kind: kind})
			}
		}
	}

	rep := report{
		Model:   o.spec.Model,
		N:       o.spec.N,
		Depth:   o.depth,
		Workers: o.workers,
		Seeds:   o.seeds,
		Cases:   len(cases),

		Reference: ref,
		Results:   make([]caseResult, 0, len(cases)),
	}
	for _, c := range cases {
		if err := ctx.Err(); err != nil {
			return o.res.Finish(fmt.Errorf("campaign interrupted after %d cases: %w", len(rep.Results), err))
		}
		plan := chaos.PlanFor(c.seed, c.point, c.kind, o.maxHit)
		chaos.Arm(plan)
		sup := o.res.Supervisor()
		sup.Seed = c.seed
		sup.Workers = o.workers
		sup.MaxBackoff = 50 * time.Millisecond
		var got string
		stats, runErr := sup.Run(ctx, c.point, func(a *resilient.Attempt) error {
			s, perr := pipeline(a, m, o.depth, o.spec.N)
			if perr != nil {
				return perr
			}
			got = s
			return nil
		})
		chaos.Disarm()

		fired := plan.Fired()
		res := caseResult{
			Seed:      c.seed,
			Point:     c.point,
			Kind:      c.kind.String(),
			Fired:     len(fired),
			Attempts:  stats.Attempts,
			Retries:   stats.Retries,
			Resumes:   stats.Resumes,
			Degrades:  stats.Degrades,
			Recovered: runErr == nil,
			Identical: runErr == nil && got == ref,
		}
		if len(fired) > 0 {
			res.Hit = fired[0].Hit
		}
		if runErr != nil {
			res.Err = runErr.Error()
		}
		if res.Fired > 0 {
			rep.Fired++
		}
		if res.Recovered {
			rep.Recovered++
		}
		if res.Identical {
			rep.Identical++
		} else {
			rep.Failures++
		}
		rep.Results = append(rep.Results, res)
	}

	if o.out != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(o.out, data, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("campaign: %d cases (%d seeds x %d points x 4 kinds), %d fired, %d recovered, %d bit-identical, %d failures\n",
		rep.Cases, o.seeds, len(chaos.Points()), rep.Fired, rep.Recovered, rep.Identical, rep.Failures)
	if rep.Failures > 0 {
		for _, r := range rep.Results {
			if !r.Identical {
				fmt.Fprintf(os.Stderr, "  FAIL seed=%d point=%s kind=%s hit=%d attempts=%d err=%s\n",
					r.Seed, r.Point, r.Kind, r.Hit, r.Attempts, r.Err)
			}
		}
		return fmt.Errorf("%d of %d cases failed to recover bit-identically", rep.Failures, rep.Cases)
	}
	return nil
}

// ---- crash harness ----

// crashStore returns the harness's generation store inside dir.
func crashStore(dir string) *resilient.Store {
	return &resilient.Store{Path: filepath.Join(dir, "crash.ckpt"), Keep: 3}
}

// runCrashChild is the subprocess the harness SIGKILLs: it interrupts a
// real exploration to obtain genuine checkpoint sections, then hammers
// Store.Save in a tight loop — rotating generations, writing temp files,
// fsyncing, renaming — printing one line per completed save so the parent
// knows when to pull the trigger. It never exits on its own.
func runCrashChild(o options) error {
	m, err := cli.Build(o.spec)
	if err != nil {
		return err
	}
	plan := chaos.NewPlan().Set("explore.layer", chaos.Rule{Hit: 2, Kind: chaos.KindCancel})
	chaos.Arm(plan)
	_, xerr := core.ExploreIDCtx(resilient.Background(), m, o.depth, 0, 1)
	chaos.Disarm()
	if xerr == nil {
		return errors.New("crash-child: exploration was not interrupted; no checkpoint to hammer")
	}
	ck, ok := resilient.CheckpointFrom(xerr)
	if !ok {
		return fmt.Errorf("crash-child: interruption carried no checkpoint: %w", xerr)
	}
	sections, err := ck.Sections()
	if err != nil {
		return err
	}
	st := crashStore(o.crashDir)
	out := bufio.NewWriter(os.Stdout)
	for i := 0; ; i++ {
		if err := st.Save(sections); err != nil {
			return fmt.Errorf("crash-child: save %d: %w", i, err)
		}
		fmt.Fprintf(out, "gen %d\n", i)
		out.Flush()
	}
}

// runCrash SIGKILLs the checkpoint-hammering child mid-write, several
// times with varied timing, and requires after every kill that the store
// loads an intact generation whose resumed exploration re-derives the
// fault-free graph. It then exercises the torn-write fallback
// deterministically: truncating or bit-flipping the newest generation must
// make Load fall back to the previous one, never fail.
func runCrash(o options) error {
	m, err := cli.Build(o.spec)
	if err != nil {
		return err
	}
	gref, err := core.ExploreID(m, o.depth, 0)
	if err != nil {
		return err
	}
	ref := graphSummary(gref)

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	base := o.crashDir
	if base == "" {
		base, err = os.MkdirTemp("", "chaoscrash")
		if err != nil {
			return err
		}
		defer os.RemoveAll(base)
	} else if err := os.MkdirAll(base, 0o755); err != nil {
		return err
	}

	resume := func(st *resilient.Store, round string) error {
		sections, gen, err := st.Load()
		if err != nil {
			return fmt.Errorf("%s: store unloadable after kill: %w", round, err)
		}
		ctx := resilient.Background()
		ctx.SetResume(sections)
		g, err := core.ExploreIDCtx(ctx, m, o.depth, 0, 1)
		if err != nil {
			return fmt.Errorf("%s: resume from generation %d failed: %w", round, gen, err)
		}
		if got := graphSummary(g); got != ref {
			return fmt.Errorf("%s: resumed graph diverged from reference:\n got %s\nwant %s", round, got, ref)
		}
		fmt.Printf("crash: %s: recovered from generation %d, bit-identical\n", round, gen)
		return nil
	}

	for kill := 0; kill < o.crashKills; kill++ {
		dir := filepath.Join(base, fmt.Sprintf("kill%d", kill))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		cmd := exec.Command(exe,
			"-crash-child", "-crash-dir", dir,
			"-model", o.spec.Model, "-n", fmt.Sprint(o.spec.N),
			"-t", fmt.Sprint(o.spec.T), "-bound", fmt.Sprint(o.spec.Bound),
			"-depth", fmt.Sprint(o.depth))
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		// Let the child complete a varying number of saves, then land the
		// SIGKILL somewhere inside the rotate-write-fsync-rename window.
		sc := bufio.NewScanner(stdout)
		saves := 0
		for sc.Scan() {
			saves++
			if saves > kill {
				break
			}
		}
		if saves == 0 {
			cmd.Process.Kill()
			cmd.Wait()
			return errors.New("crash: child produced no checkpoint generation")
		}
		time.Sleep(time.Duration(kill) * 300 * time.Microsecond)
		if err := cmd.Process.Kill(); err != nil {
			return err
		}
		cmd.Wait()
		if err := resume(crashStore(dir), fmt.Sprintf("kill %d (after %d saves)", kill, saves)); err != nil {
			return err
		}
	}

	// Deterministic torn-write fallback: two generations, then mangle the
	// newest — Load must fall back to generation 1, not fail and not trust
	// the mangled bytes.
	tornDir := filepath.Join(base, "torn")
	if err := os.MkdirAll(tornDir, 0o755); err != nil {
		return err
	}
	st := crashStore(tornDir)
	sections := []resilient.Section{{Tag: resilient.TagExplore, Data: []byte("not a real snapshot")}}
	if err := st.Save(sections); err != nil {
		return err
	}
	if err := st.Save(sections); err != nil {
		return err
	}
	mangle := []func(path string) error{
		func(path string) error { // torn tail: truncate mid-section
			fi, err := os.Stat(path)
			if err != nil {
				return err
			}
			return os.Truncate(path, fi.Size()/2)
		},
		func(path string) error { // bit rot: flip one payload byte
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			data[len(data)-6] ^= 0x80
			return os.WriteFile(path, data, 0o644)
		},
	}
	for i, f := range mangle {
		if err := f(st.Path); err != nil {
			return err
		}
		got, gen, err := st.Load()
		if err != nil {
			return fmt.Errorf("torn case %d: fallback load failed: %w", i, err)
		}
		if gen == 0 {
			return fmt.Errorf("torn case %d: load trusted the mangled generation 0", i)
		}
		if len(got) != 1 || got[0].Tag != resilient.TagExplore || string(got[0].Data) != string(sections[0].Data) {
			return fmt.Errorf("torn case %d: fallback returned wrong sections", i)
		}
		// Restore generation 0 for the next mangling.
		if err := st.Save(sections); err != nil {
			return err
		}
	}
	fmt.Printf("crash: %d SIGKILL rounds + %d torn-write cases recovered, all bit-identical\n",
		o.crashKills, len(mangle))
	return nil
}
