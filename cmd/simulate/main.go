// Command simulate executes concrete runs of a model under a chosen
// scheduler and reports aggregate statistics: decision rates, agreement
// violations, and layers-to-decision. It complements the exhaustive
// certifier with cheap statistical exploration at sizes where exhaustive
// search is infeasible.
//
// Usage:
//
//	simulate -model sync-st -n 5 -t 3 -bound 4 -runs 200 -seed 7
//	simulate -model mobile -n 4 -bound 3 -runs 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		model = fs.String("model", "sync-st", "model: "+strings.Join(cli.Models(), "|"))
		n     = fs.Int("n", 4, "number of processes")
		t     = fs.Int("t", 2, "failure budget (sync-st)")
		bound = fs.Int("bound", 3, "protocol decision bound and per-run layer cap")
		runs  = fs.Int("runs", 100, "random runs per initial state")
		seed  = fs.Int64("seed", 1, "base RNG seed")
	)
	obsFlags := cli.RegisterObs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopObs, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer stopObs()
	m, err := cli.Build(cli.Spec{Model: *model, N: *n, T: *t, Bound: *bound})
	if err != nil {
		return err
	}
	r := &sim.Runner{Model: m, MaxLayers: *bound}
	st, err := r.RunMany(*runs, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("model:               %s\n", m.Name())
	fmt.Printf("runs:                %d (%d per initial state, seed %d)\n", st.Runs, *runs, *seed)
	fmt.Printf("fully decided:       %d/%d\n", st.Decided, st.Runs)
	fmt.Printf("agreement held:      %d/%d\n", st.AgreementOK, st.Runs)
	fmt.Printf("agreement violated:  %d\n", st.Violations)
	fmt.Printf("avg layers per run:  %.2f (max %d)\n", float64(st.TotalLayers)/float64(st.Runs), st.MaxLayersToEnd)
	if st.Violations > 0 {
		fmt.Println("note: violations are expected for consensus candidates in the asynchronous")
		fmt.Println("and mobile models (Corollaries 5.2/5.4) and for too-fast synchronous ones")
		fmt.Println("(Corollary 6.3); use cmd/bivalence for the exhaustive witness.")
	}
	return nil
}
