// Command lint runs the engine-invariant analyzer suite (internal/analysis)
// over module packages. It has two modes:
//
// Standalone (make lint):
//
//	go run ./cmd/lint ./...
//
// loads packages through `go list -export`, runs every analyzer that
// Applies to each package, prints file:line:col: [analyzer] message lines,
// and exits 1 when any diagnostic is reported. Because `go list -deps`
// emits dependencies before dependents, cross-package analysis facts flow
// through a single in-memory store: fact-producing analyzers run on every
// module package in the dependency closure — even packages outside their
// reporting scope or not matched by the patterns at all — so helper
// properties reach the packages that consume them; diagnostics are only
// reported for packages the patterns name.
//
// Two standalone flags serve tooling:
//
//	-json    emit diagnostics as a JSON array (file/line/col/analyzer/
//	         message/suppressed), suppressed findings included
//	-stale   audit escape hatches: list //lint:<token> comments that
//	         suppress no diagnostic, and exit 0
//
// Vettool (make vettool): the binary also speaks the cmd/go unitchecker
// protocol, so the same checks run under the build cache:
//
//	go build -o bin/lint ./cmd/lint
//	go vet -vettool=bin/lint ./...
//
// In this mode cmd/go invokes the tool once per compilation unit with a
// JSON config file; diagnostics go to stderr and the exit status is 2.
// Facts ride the protocol's .vetx files: dependency units are analyzed
// with VetxOnly and their exported facts serialized to VetxOutput, which
// cmd/go hands back to dependents as PackageVetx. Test files are only
// checked by senterr (tests may reach into iteration order and timing
// deliberately; sentinel comparisons stay wrong everywhere).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	// The unitchecker handshake: cmd/go probes the tool's version and flag
	// set before handing it config files.
	versionFlag := flag.String("V", "", "print version (unitchecker protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON (unitchecker protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON (standalone mode)")
	staleFlag := flag.Bool("stale", false, "list stale //lint: suppressions and exit 0 (standalone mode)")
	flag.Usage = usage
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion()
	case *flagsFlag:
		// No tool-level flags cross the unitchecker protocol; -json and
		// -stale are standalone conveniences.
		fmt.Println("[]")
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		runUnitchecker(flag.Arg(0))
	default:
		runStandalone(flag.Args(), *jsonFlag, *staleFlag)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: lint [-json] [-stale] [packages]   (standalone, e.g. lint ./...)\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which lint) [packages]\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress one finding with a //lint:<token> comment on the flagged line or the line above\n")
}

// printVersion emulates unitchecker's -V=full output; cmd/go folds the
// buildID into its action cache key so vettool results invalidate when the
// lint binary changes.
func printVersion() {
	progname, _ := os.Executable()
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(progname), string(h.Sum(nil)))
}

// jsonDiag is one diagnostic in -json output.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// suppressTokens maps each escape-hatch token to the analyzers it serves
// (markers like hotpath are annotations, not hatches, and are excluded).
func suppressTokens() map[string]bool {
	tokens := make(map[string]bool)
	for _, a := range analysis.All() {
		if a.Suppress != "" && !analysis.MarkerTokens[a.Suppress] {
			tokens[a.Suppress] = true
		}
	}
	return tokens
}

// runStandalone is the make-lint path: load packages via the go command and
// report to stdout.
func runStandalone(patterns []string, jsonOut, staleOut bool) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := &analysis.Loader{Dir: "."}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// One fact store for the whole walk: go list -deps returns packages in
	// dependency order, so producers always run before consumers.
	facts := analysis.NewFactStore()

	type hatch struct {
		pos   token.Position
		key   string
		token string
	}
	var hatches []hatch
	known := suppressTokens()
	used := make(map[string]bool) // "key\x00token" pairs that suppressed something

	var all []jsonDiag
	active := 0
	for _, pkg := range pkgs {
		if staleOut && !pkg.DepOnly {
			for _, c := range analysis.LintComments(pkg.Fset, pkg.Files) {
				for _, tok := range c.Tokens {
					if known[tok] {
						hatches = append(hatches, hatch{pos: pkg.Fset.Position(c.Pos), key: c.Key, token: tok})
					}
				}
			}
		}
		for _, a := range analysis.All() {
			// A dep-only package (loaded because a pattern depends on it, not
			// matched itself) contributes facts but never diagnostics.
			applies := analysis.Applies(a, pkg.ImportPath) && !pkg.DepOnly
			if !applies && !analysis.FactProducer(a) {
				continue
			}
			diags, err := analysis.RunAnalyzerFacts(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, facts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, d := range diags {
				if d.Suppressed {
					used[d.SuppressedBy+"\x00"+a.Suppress] = true
				}
				if !applies {
					continue // fact-producing run outside the reporting scope
				}
				pos := pkg.Fset.Position(d.Pos)
				all = append(all, jsonDiag{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: a.Name, Message: d.Message, Suppressed: d.Suppressed,
				})
				if !d.Suppressed {
					active++
					if !jsonOut && !staleOut {
						fmt.Printf("%s: [%s] %s\n", pos, a.Name, d.Message)
					}
				}
			}
		}
	}

	switch {
	case staleOut:
		// Audit only: list hatches that silenced nothing; always exit 0.
		stale := 0
		sort.Slice(hatches, func(i, j int) bool {
			if hatches[i].pos.Filename != hatches[j].pos.Filename {
				return hatches[i].pos.Filename < hatches[j].pos.Filename
			}
			return hatches[i].pos.Line < hatches[j].pos.Line
		})
		for _, h := range hatches {
			if !used[h.key+"\x00"+h.token] {
				stale++
				fmt.Printf("%s: stale //lint:%s suppresses nothing\n", h.pos, h.token)
			}
		}
		fmt.Fprintf(os.Stderr, "lint: %d stale suppression(s)\n", stale)
	case jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []jsonDiag{}
		}
		if err := enc.Encode(all); err != nil {
			fatalf("encoding json: %v", err)
		}
		if active > 0 {
			os.Exit(1)
		}
	default:
		if active > 0 {
			fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", active)
			os.Exit(1)
		}
	}
}

// unitConfig is the subset of cmd/go's vet config JSON the tool consumes.
type unitConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOutput  string
	VetxOnly    bool
}

// runUnitchecker analyzes one compilation unit described by a cfg file, per
// the go vet -vettool contract.
func runUnitchecker(cfgPath string) {
	body, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading config: %v", err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(body, &cfg); err != nil {
		fatalf("parsing config %s: %v", cfgPath, err)
	}

	// Test variants re-list the non-test files; only report on them from the
	// base unit so findings are not duplicated across units.
	basePath := cfg.ImportPath
	isVariant := false
	if i := strings.Index(basePath, " ["); i >= 0 {
		basePath, isVariant = basePath[:i], true
	}

	// Dependency units are vetted only for their facts. Standard-library
	// units get an empty facts file (analyzers treat the stdlib
	// intrinsically); everything else is analyzed from source by the
	// fact-producing analyzers so helper properties reach dependents.
	if cfg.VetxOnly && (cfg.Standard[basePath] || len(cfg.GoFiles) == 0) {
		writeVetx(cfg.VetxOutput, nil)
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}

	// Seed the fact store with every dependency's facts. Each .vetx already
	// carries its own dependencies' facts merged in, so direct imports
	// suffice; empty files are stdlib units that produced nothing.
	facts := analysis.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil || len(data) == 0 {
			continue
		}
		if err := facts.Merge(data); err != nil {
			fatalf("merging facts from %s: %v", vetx, err)
		}
	}

	found := 0
	for _, a := range analysis.All() {
		applies := analysis.Applies(a, basePath)
		if cfg.VetxOnly {
			applies = false // facts only; a dependent unit reports
		}
		if !applies && !analysis.FactProducer(a) {
			continue
		}
		diags, err := analysis.RunAnalyzerFacts(a, fset, files, pkg, info, facts)
		if err != nil {
			fatalf("%v", err)
		}
		if !applies {
			continue
		}
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			pos := fset.Position(d.Pos)
			inTest := strings.HasSuffix(pos.Filename, "_test.go")
			if inTest && a != analysis.SentErr {
				continue
			}
			if !inTest && isVariant {
				continue
			}
			found++
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pos, a.Name, d.Message)
		}
	}

	writeVetx(cfg.VetxOutput, facts)
	if found > 0 {
		os.Exit(2)
	}
}

// writeVetx persists the fact store (or an empty file) at path; cmd/go
// expects the file to exist even when there are no facts.
func writeVetx(path string, facts *analysis.FactStore) {
	if path == "" {
		return
	}
	var data []byte
	if facts != nil && facts.Len() > 0 {
		var err error
		data, err = facts.Encode()
		if err != nil {
			fatalf("encoding facts: %v", err)
		}
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fatalf("writing vetx output: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lint: "+format+"\n", args...)
	os.Exit(1)
}
