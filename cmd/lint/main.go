// Command lint runs the engine-invariant analyzer suite (internal/analysis)
// over module packages. It has two modes:
//
// Standalone (make lint):
//
//	go run ./cmd/lint ./...
//
// loads packages through `go list -export`, runs every analyzer that
// Applies to each package, prints file:line:col: [analyzer] message lines,
// and exits 1 when any diagnostic is reported.
//
// Vettool (make vettool): the binary also speaks the cmd/go unitchecker
// protocol, so the same checks run under the build cache:
//
//	go build -o bin/lint ./cmd/lint
//	go vet -vettool=bin/lint ./...
//
// In this mode cmd/go invokes the tool once per compilation unit with a
// JSON config file; diagnostics go to stderr and the exit status is 2. Test
// files are only checked by senterr (tests may reach into iteration order
// and timing deliberately; sentinel comparisons stay wrong everywhere).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	// The unitchecker handshake: cmd/go probes the tool's version and flag
	// set before handing it config files.
	versionFlag := flag.String("V", "", "print version (unitchecker protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON (unitchecker protocol)")
	flag.Usage = usage
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion()
	case *flagsFlag:
		// No tool-level flags beyond the protocol ones.
		fmt.Println("[]")
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		runUnitchecker(flag.Arg(0))
	default:
		runStandalone(flag.Args())
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: lint [packages]   (standalone, e.g. lint ./...)\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which lint) [packages]\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress one finding with a //lint:<token> comment on the flagged line or the line above\n")
}

// printVersion emulates unitchecker's -V=full output; cmd/go folds the
// buildID into its action cache key so vettool results invalidate when the
// lint binary changes.
func printVersion() {
	progname, _ := os.Executable()
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(progname), string(h.Sum(nil)))
}

// runStandalone is the make-lint path: load packages via the go command and
// report to stdout.
func runStandalone(patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := &analysis.Loader{Dir: "."}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	found := 0
	for _, pkg := range pkgs {
		for _, a := range analysis.All() {
			if !analysis.Applies(a, pkg.ImportPath) {
				continue
			}
			diags, err := analysis.RunAnalyzer(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, d := range diags {
				found++
				fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), a.Name, d.Message)
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// unitConfig is the subset of cmd/go's vet config JSON the tool consumes.
type unitConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOutput  string
	VetxOnly    bool
}

// runUnitchecker analyzes one compilation unit described by a cfg file, per
// the go vet -vettool contract.
func runUnitchecker(cfgPath string) {
	body, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading config: %v", err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(body, &cfg); err != nil {
		fatalf("parsing config %s: %v", cfgPath, err)
	}

	// Dependency units are vetted only for their facts; this suite exports
	// none, so write the (empty) facts file and succeed without analyzing.
	if cfg.VetxOnly {
		writeVetx(cfg.VetxOutput)
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}

	// cmd/go expects the facts output file to exist even though this suite
	// exports no facts.
	writeVetx(cfg.VetxOutput)

	// Test variants re-list the non-test files; only report on them from the
	// base unit so findings are not duplicated across units.
	basePath := cfg.ImportPath
	isVariant := false
	if i := strings.Index(basePath, " ["); i >= 0 {
		basePath, isVariant = basePath[:i], true
	}

	found := 0
	for _, a := range analysis.All() {
		if !analysis.Applies(a, basePath) {
			continue
		}
		diags, err := analysis.RunAnalyzer(a, fset, files, pkg, info)
		if err != nil {
			fatalf("%v", err)
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			inTest := strings.HasSuffix(pos.Filename, "_test.go")
			if inTest && a != analysis.SentErr {
				continue
			}
			if !inTest && isVariant {
				continue
			}
			found++
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pos, a.Name, d.Message)
		}
	}
	if found > 0 {
		os.Exit(2)
	}
}

func writeVetx(path string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, nil, 0o666); err != nil {
		fatalf("writing vetx output: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lint: "+format+"\n", args...)
	os.Exit(1)
}
