package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the lint binary once per test into a temp dir.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building lint: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestLintExitsZeroOnRepo pins the suite's clean bill of health: every true
// finding in the tree has been fixed or carries an auditable //lint:
// annotation, so the standalone checker must exit 0 over ./...
func TestLintExitsZeroOnRepo(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("lint ./... reported findings on a clean tree: %v\n%s", err, out)
	}
}

// TestLintExitsNonzeroOnViolation rebuilds the acceptance scenario: a map
// range deliberately introduced into an internal/valence/field.go must make
// the checker exit nonzero with a detorder diagnostic.
func TestLintExitsNonzeroOnViolation(t *testing.T) {
	bin := buildLint(t)
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module synthetic\n\ngo 1.22\n",
		"internal/valence/field.go": `package valence

// Sum folds a map without sorting: the planted detorder violation.
func Sum(weights map[string]int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	return total
}
`,
	}
	for name, body := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("lint on planted violation: err = %v (want nonzero exit)\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("lint exit code = %d, want 1\n%s", code, out)
	}
	text := string(out)
	if !strings.Contains(text, "[detorder]") || !strings.Contains(text, "range over map") {
		t.Fatalf("lint output missing detorder diagnostic:\n%s", text)
	}
}

// TestLintVersionHandshake checks the -V=full half of the go vet -vettool
// protocol: one line ending in a buildID field.
func TestLintVersionHandshake(t *testing.T) {
	bin := buildLint(t)
	out, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("lint -V=full: %v\n%s", err, out)
	}
	fields := strings.Fields(strings.TrimSpace(string(out)))
	if len(fields) < 3 || !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("lint -V=full output %q does not satisfy the vettool handshake", out)
	}
	flagsOut, err := exec.Command(bin, "-flags").CombinedOutput()
	if err != nil {
		t.Fatalf("lint -flags: %v\n%s", err, flagsOut)
	}
	if strings.TrimSpace(string(flagsOut)) != "[]" {
		t.Fatalf("lint -flags = %q, want []", flagsOut)
	}
}
