package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the lint binary once per test into a temp dir.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building lint: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestLintExitsZeroOnRepo pins the suite's clean bill of health: every true
// finding in the tree has been fixed or carries an auditable //lint:
// annotation, so the standalone checker must exit 0 over ./...
func TestLintExitsZeroOnRepo(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("lint ./... reported findings on a clean tree: %v\n%s", err, out)
	}
}

// TestLintExitsNonzeroOnViolation rebuilds the acceptance scenario: a map
// range deliberately introduced into an internal/valence/field.go must make
// the checker exit nonzero with a detorder diagnostic.
func TestLintExitsNonzeroOnViolation(t *testing.T) {
	bin := buildLint(t)
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module synthetic\n\ngo 1.22\n",
		"internal/valence/field.go": `package valence

// Sum folds a map without sorting: the planted detorder violation.
func Sum(weights map[string]int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	return total
}
`,
	}
	for name, body := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("lint on planted violation: err = %v (want nonzero exit)\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("lint exit code = %d, want 1\n%s", code, out)
	}
	text := string(out)
	if !strings.Contains(text, "[detorder]") || !strings.Contains(text, "range over map") {
		t.Fatalf("lint output missing detorder diagnostic:\n%s", text)
	}
}

// TestLintVersionHandshake checks the -V=full half of the go vet -vettool
// protocol: one line ending in a buildID field.
func TestLintVersionHandshake(t *testing.T) {
	bin := buildLint(t)
	out, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("lint -V=full: %v\n%s", err, out)
	}
	fields := strings.Fields(strings.TrimSpace(string(out)))
	if len(fields) < 3 || !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("lint -V=full output %q does not satisfy the vettool handshake", out)
	}
	flagsOut, err := exec.Command(bin, "-flags").CombinedOutput()
	if err != nil {
		t.Fatalf("lint -flags: %v\n%s", err, flagsOut)
	}
	if strings.TrimSpace(string(flagsOut)) != "[]" {
		t.Fatalf("lint -flags = %q, want []", flagsOut)
	}
}

// writeTree materializes a file map under a temp dir and returns the dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// violationModule is a synthetic module with exactly one violation per
// PR 5-8 contract analyzer, plus a loop whose poll arrives through a
// cross-package fact (chaos.Check) — a false positive there means fact
// propagation broke in the driver under test.
func violationModule(t *testing.T) string {
	t.Helper()
	return writeTree(t, map[string]string{
		"go.mod": "module synthetic\n\ngo 1.22\n",
		"resilient/resilient.go": `package resilient

type Ctx struct{ canceled bool }

func (c *Ctx) Err() error {
	if c != nil && c.canceled {
		return errCanceled
	}
	return nil
}

type ctxErr struct{ s string }

func (e *ctxErr) Error() string { return e.s }

var errCanceled = &ctxErr{"canceled"}

type Enc struct{ buf []byte }

func (e *Enc) U32(v uint32) { e.buf = append(e.buf, byte(v)) }
func (e *Enc) Str(s string) { e.buf = append(e.buf, s...) }

type Dec struct{ off int }

func (d *Dec) U32() uint32 { d.off += 4; return 0 }
func (d *Dec) Str() string { d.off++; return "" }
`,
		"chaos/chaos.go": `package chaos

import "synthetic/resilient"

func Check(ctx *resilient.Ctx, point string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_ = point
	return nil
}
`,
		"obs/obs.go": `package obs

type SpanID uint64

type TraceSpan struct{ ID, Parent SpanID }

type Tracer struct{}

func (t *Tracer) Begin(name string, parent SpanID) TraceSpan { return TraceSpan{} }
func (t *Tracer) End(s TraceSpan)                            {}
`,
		"internal/valence/field.go": `package valence

import (
	"synthetic/chaos"
	"synthetic/resilient"
)

func work(i int) int { return i * 2 }

// BadLoop never polls: the ctxpoll violation.
func BadLoop(ctx *resilient.Ctx, items []int) int {
	total := 0
	for _, it := range items {
		total += work(it)
	}
	return total
}

// GoodLoop polls through chaos.Check; reporting it means cross-package
// fact propagation broke.
func GoodLoop(ctx *resilient.Ctx, items []int) error {
	for _, it := range items {
		if err := chaos.Check(ctx, "layer"); err != nil {
			return err
		}
		work(it)
	}
	return nil
}
`,
		"internal/core/codec.go": `package core

import "synthetic/resilient"

type Frame struct {
	ID   uint32
	Name string
}

func (f *Frame) Sections(e *resilient.Enc) {
	e.U32(f.ID)
	e.Str(f.Name)
}

// DecodeFrame reads the sections in the wrong order: the codecpair
// violation.
func DecodeFrame(d *resilient.Dec) *Frame {
	f := &Frame{}
	f.Name = d.Str()
	f.ID = d.U32()
	return f
}
`,
		"span/span.go": `package span

import "synthetic/obs"

// Leak discards a span: the spanend violation.
func Leak(tr *obs.Tracer) {
	tr.Begin("phase", 0)
}
`,
		"hot/hot.go": `package hot

// Fill is marked hot but allocates: the hotalloc violation.
//lint:hotpath
func Fill(n int) []byte {
	return make([]byte, n)
}
`,
		"atomicpkg/atomicpkg.go": `package atomicpkg

import "sync/atomic"

type counter struct{ n uint64 }

func bump(c *counter) { atomic.AddUint64(&c.n, 1) }

// Read touches the field plainly: the atomicfield violation.
func Read(c *counter) uint64 { return c.n }
`,
	})
}

// TestLintExitCodePerNewAnalyzer plants one violation per contract analyzer
// in a synthetic module and asserts the standalone checker exits 1 naming
// all five — and that the loop polling through a cross-package helper is
// NOT among the findings.
func TestLintExitCodePerNewAnalyzer(t *testing.T) {
	bin := buildLint(t)
	dir := violationModule(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("lint on planted violations: err = %v (want exit 1)\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("lint exit code = %d, want 1\n%s", code, out)
	}
	text := string(out)
	for _, tag := range []string{"[ctxpoll]", "[spanend]", "[hotalloc]", "[codecpair]", "[atomicfield]"} {
		if !strings.Contains(text, tag) {
			t.Errorf("lint output missing %s diagnostic:\n%s", tag, text)
		}
	}
	if strings.Contains(text, "GoodLoop") || strings.Count(text, "[ctxpoll]") != 1 {
		t.Errorf("cross-package polls fact did not propagate (GoodLoop flagged?):\n%s", text)
	}
}

// TestLintVettoolPerNewAnalyzer drives the same module through the go vet
// unitchecker protocol: all five contract analyzers must report, and the
// chaos.Check polls fact must cross packages via the .vetx files.
func TestLintVettoolPerNewAnalyzer(t *testing.T) {
	bin := buildLint(t)
	dir := violationModule(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on planted violations succeeded, want failure\n%s", out)
	}
	text := string(out)
	for _, tag := range []string{"[ctxpoll]", "[spanend]", "[hotalloc]", "[codecpair]", "[atomicfield]"} {
		if !strings.Contains(text, tag) {
			t.Errorf("go vet output missing %s diagnostic:\n%s", tag, text)
		}
	}
	if strings.Count(text, "[ctxpoll]") != 1 {
		t.Errorf("cross-package polls fact did not cross the vetx boundary:\n%s", text)
	}
}

// TestLintJSONRoundTrip checks -json output: every diagnostic from the
// synthetic module decodes with file/line/analyzer/message populated,
// suppressed findings are included and marked, and the document re-encodes
// losslessly.
func TestLintJSONRoundTrip(t *testing.T) {
	bin := buildLint(t)
	dir := violationModule(t)
	suppressed := filepath.Join(dir, "hot", "suppressed.go")
	if err := os.WriteFile(suppressed, []byte(`package hot

//lint:hotpath
func FillQuiet(n int) []byte {
	return make([]byte, n) //lint:alloc exercised by the json test
}
`), 0o666); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("lint -json exit = %v, want 1\n%s", err, out)
	}
	type diag struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Col        int    `json:"col"`
		Analyzer   string `json:"analyzer"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	var diags []diag
	if err := json.Unmarshal(out, &diags); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out)
	}
	if len(diags) < 6 {
		t.Fatalf("got %d diagnostics, want >= 6 (5 active + 1 suppressed)\n%s", len(diags), out)
	}
	analyzers := make(map[string]bool)
	foundSuppressed := false
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		analyzers[d.Analyzer] = true
		if d.Suppressed && strings.HasSuffix(d.File, "suppressed.go") {
			foundSuppressed = true
		}
	}
	for _, want := range []string{"ctxpoll", "spanend", "hotalloc", "codecpair", "atomicfield"} {
		if !analyzers[want] {
			t.Errorf("-json output missing analyzer %q", want)
		}
	}
	if !foundSuppressed {
		t.Errorf("-json output does not mark the suppressed finding")
	}
	redone, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	var again []diag
	if err := json.Unmarshal(redone, &again); err != nil {
		t.Fatal(err)
	}
	if len(again) != len(diags) {
		t.Fatalf("round trip changed diagnostic count: %d != %d", len(again), len(diags))
	}
}

// TestLintStaleAudit plants one live suppression and one stale one: -stale
// must list only the stale comment and exit 0 despite the live findings.
func TestLintStaleAudit(t *testing.T) {
	bin := buildLint(t)
	dir := violationModule(t)
	stalefile := filepath.Join(dir, "hot", "stale.go")
	if err := os.WriteFile(stalefile, []byte(`package hot

//lint:hotpath
func Sum(xs []int) int {
	total := 0
	//lint:poll nothing to suppress here
	for _, x := range xs {
		total += x
	}
	return total
}

func Quiet(n int) []byte {
	return make([]byte, n) //lint:alloc suppresses nothing: Quiet is not a hot path
}
`), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "hot", "suppressed.go"), []byte(`package hot

//lint:hotpath
func FillQuiet(n int) []byte {
	return make([]byte, n) //lint:alloc live suppression
}
`), 0o666); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-stale", "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("lint -stale must exit 0 even with findings present: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "stale.go") || !strings.Contains(text, "stale //lint:poll") {
		t.Errorf("-stale did not flag the dead poll suppression:\n%s", text)
	}
	if !strings.Contains(text, "stale //lint:alloc") {
		t.Errorf("-stale did not flag the dead alloc suppression on a non-hotpath function:\n%s", text)
	}
	if strings.Contains(text, "suppressed.go") {
		t.Errorf("-stale flagged the live suppression:\n%s", text)
	}
}
