// Command lowerbound reproduces the Section 6 story for the t-resilient
// synchronous model: it certifies FloodSet with t+1 rounds (the classical
// matching upper bound), refutes the t-round variant with a concrete
// adversary run (Corollary 6.3), and constructs the Lemma 6.1 bivalent
// chain showing how the adversary spends one failure per round to postpone
// decision.
//
// Usage:
//
//	lowerbound -n 4 -t 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/syncmp"
	"repro/internal/trace"
	"repro/internal/valence"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	var (
		n      = fs.Int("n", 4, "number of processes (>= t+2)")
		t      = fs.Int("t", 2, "failure budget")
		visits = fs.Int("budget", 10_000_000, "certification visit budget (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *t < 1 || *t > *n-2 {
		return fmt.Errorf("need 1 <= t <= n-2, got n=%d t=%d", *n, *t)
	}

	// Upper bound: FloodSet with t+1 rounds is correct.
	good := protocols.FloodSet{Rounds: *t + 1}
	mGood := syncmp.NewSt(good, *n, *t)
	w, err := valence.Certify(mGood, *t+1, *visits)
	if err != nil {
		return err
	}
	fmt.Printf("FloodSet(%d rounds), n=%d t=%d: %s (%d state-visits)\n", *t+1, *n, *t, w.Kind, w.Explored)
	if w.Kind != valence.OK {
		return fmt.Errorf("the t+1-round protocol was refuted; this contradicts the classical upper bound")
	}

	// Lower bound: the t-round variant must fail.
	fast := protocols.FloodSet{Rounds: *t}
	mFast := syncmp.NewSt(fast, *n, *t)
	w, err = valence.Certify(mFast, *t, *visits)
	if err != nil {
		return err
	}
	fmt.Printf("FloodSet(%d rounds), n=%d t=%d: %s\n", *t, *n, *t, w.Kind)
	if w.Kind == valence.OK {
		return fmt.Errorf("the t-round protocol was certified; this contradicts Corollary 6.3")
	}
	fmt.Printf("detail: %s\nadversary run:\n%s", w.Detail, trace.FormatExecution(w.Exec))

	// Lemma 6.1: the bivalent chain against the CORRECT protocol, showing
	// decision cannot complete before round t+1.
	fmt.Printf("\nLemma 6.1 bivalent chain against FloodSet(%d):\n", *t+1)
	o := valence.NewOracle(mGood)
	ch, err := valence.BivalentChain(mGood, o, valence.DecreasingHorizon(*t+1, 1), *t-1)
	if err != nil {
		return err
	}
	fmt.Print(trace.FormatExecution(ch.Exec))
	if ch.Stuck != nil {
		return fmt.Errorf("chain stuck at depth %d", ch.Reached)
	}
	last := ch.Exec.Last()
	fmt.Printf("after %d layers: %d processes failed, bivalent, nobody decided -> ", ch.Reached, core.FailedCount(last))
	fmt.Println("two more rounds are needed (Lemma 6.2): the t+1 bound is tight")
	return nil
}
