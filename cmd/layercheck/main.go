// Command layercheck verifies the paper's layer-connectivity properties
// for a chosen model: for every initial state (and optionally for every
// state down to a depth), it analyzes the layer S(x) and reports similarity
// connectivity, valence connectivity, the number of similarity components,
// and the layer's s-diameter.
//
// Usage:
//
//	layercheck -model mobile -n 3 -bound 2
//	layercheck -model sync-st -n 4 -t 2 -bound 3 -depth 1
//	layercheck -model shmem -n 3 -bound 2
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/valence"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "layercheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("layercheck", flag.ContinueOnError)
	var (
		model   = fs.String("model", "mobile", "model: "+strings.Join(cli.Models(), "|"))
		n       = fs.Int("n", 3, "number of processes")
		t       = fs.Int("t", 1, "failure budget (sync-st)")
		bound   = fs.Int("bound", 2, "protocol decision bound (layers)")
		depth   = fs.Int("depth", 0, "also analyze layers of states down to this depth")
		verbose = fs.Bool("v", false, "print one line per analyzed state")
		jsonOut = fs.Bool("json", false, "emit machine-readable JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := cli.Build(cli.Spec{Model: *model, N: *n, T: *t, Bound: *bound})
	if err != nil {
		return err
	}
	g, err := core.Explore(m, *depth, 2_000_000)
	if err != nil {
		if !errors.Is(err, core.ErrNodeBudget) {
			return err
		}
		fmt.Fprintf(os.Stderr, "layercheck: %v; analyzing the partial graph\n", err)
	}
	o := valence.NewOracle(m)

	if *jsonOut {
		return runJSON(m, g, o, *depth, *bound)
	}
	fmt.Printf("model %s: analyzing layers of %d state(s) to depth %d\n", m.Name(), g.Len(), *depth)
	var analyzed, simConn, valConn int
	maxDiam := 0
	for d := 0; d <= *depth; d++ {
		for _, x := range g.StatesAtDepth(d) {
			h := *bound - d
			if h < 1 {
				h = 1
			}
			r := valence.AnalyzeLayer(m, o, x, h)
			analyzed++
			if r.SimilarityConnected {
				simConn++
			}
			if r.ValenceConnected {
				valConn++
			}
			if r.SDiameter > maxDiam {
				maxDiam = r.SDiameter
			}
			if *verbose {
				fmt.Printf("  depth=%d |S(x)|=%d sim-conn=%v (components=%d, s-diam=%d) val-conn=%v bivalent=%d null=%d\n",
					d, len(r.States), r.SimilarityConnected, r.SimilarityComponents,
					r.SDiameter, r.ValenceConnected, len(r.BivalentIdx), len(r.NullValentIdx))
			}
		}
	}
	fmt.Printf("layers analyzed:        %d\n", analyzed)
	fmt.Printf("similarity connected:   %d/%d\n", simConn, analyzed)
	fmt.Printf("valence connected:      %d/%d\n", valConn, analyzed)
	fmt.Printf("max layer s-diameter:   %d\n", maxDiam)
	if valConn != analyzed {
		return fmt.Errorf("%d layer(s) not valence connected (horizon too small, or theory violated)", analyzed-valConn)
	}
	return nil
}

// runJSON emits one LayerJSON per analyzed state, grouped by depth.
func runJSON(m core.Model, g *core.Graph, o *valence.Oracle, depth, bound int) error {
	type entry struct {
		Depth int               `json:"depth"`
		Layer *report.LayerJSON `json:"layer"`
	}
	doc := struct {
		Model  string  `json:"model"`
		Layers []entry `json:"layers"`
	}{Model: m.Name()}
	for d := 0; d <= depth; d++ {
		for _, x := range g.StatesAtDepth(d) {
			h := bound - d
			if h < 1 {
				h = 1
			}
			doc.Layers = append(doc.Layers, entry{
				Depth: d,
				Layer: report.NewLayer(valence.AnalyzeLayer(m, o, x, h)),
			})
		}
	}
	return report.Write(os.Stdout, doc)
}
