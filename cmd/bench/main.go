// Command bench runs the repository's experiment benchmarks (E1–E11 and
// the sharded/legacy exploration grid in the root package, plus the
// certifier benchmarks in internal/valence) through `go test -bench` and
// distills the results into a machine-readable JSON file — ns/op, B/op,
// allocs/op, and, for benchmarks that report a "states" metric, the
// derived states/sec throughput. The BenchmarkExplore grid's paired rows
// are additionally reduced to a within-run sharded-vs-legacy geomean.
//
// Usage:
//
//	bench                       # writes BENCH_1.json in the cwd
//	bench -out results.json -benchtime 2x
//	bench -out BENCH_2.json -baseline BENCH_1.json   # print deltas too
//	bench -profiledir profiles  # also write cpu/mem profiles per suite
//	bench -deadline 5m          # stop between suites when the budget elapses
//
// SIGINT (or an elapsed -deadline) stops the run at the next suite
// boundary; the suites measured so far are still written to -out and the
// exit is nonzero. Benchmarks run in child `go test` processes, so
// -checkpoint/-resume snapshot nothing here — rerun the remaining suites
// instead.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cli"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// States is the benchmark's reported search-effort metric (states
	// explored per op), when it reports one.
	States float64 `json:"states,omitempty"`
	// StatesPerSec = States / (NsPerOp / 1e9).
	StatesPerSec float64 `json:"states_per_sec,omitempty"`
	// Extra holds any other custom metrics (unit -> value).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Benchtime  string `json:"benchtime"`
	// Baseline and GeomeanSpeedup are set when -baseline was given: the
	// baseline file name and the geometric mean of old/new ns/op across
	// every benchmark present in both reports.
	Baseline       string  `json:"baseline,omitempty"`
	GeomeanSpeedup float64 `json:"geomean_speedup,omitempty"`
	// ExploreShardedSpeedup is the geometric mean of legacy/sharded ns/op
	// across the BenchmarkExplore grid's paired rows — the sharded
	// successor cache's speedup over the pinned single-lock reference on
	// the exploration-bound workload, measured within this run.
	ExploreShardedSpeedup float64  `json:"explore_sharded_speedup,omitempty"`
	Benchmarks            []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		out        = fs.String("out", "BENCH_1.json", "output JSON path")
		benchtime  = fs.String("benchtime", "1s", "go test -benchtime value")
		baseline   = fs.String("baseline", "", "baseline JSON to print a side-by-side delta against")
		verbose    = fs.Bool("v", false, "echo raw go test output")
		profiledir = fs.String("profiledir", "", "write per-suite cpu/mem profiles and test binaries into `dir`")
	)
	obsFlags := cli.RegisterObs(fs)
	resFlags := cli.RegisterResilience(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopObs, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer stopObs()
	ctx, stopRes, err := resFlags.Start()
	if err != nil {
		return err
	}
	defer stopRes()
	if *profiledir != "" {
		if err := os.MkdirAll(*profiledir, 0o755); err != nil {
			return err
		}
	}

	suites := []struct {
		pkg     string
		pattern string
	}{
		{"repro", "BenchmarkE[0-9]"},
		{"repro", "BenchmarkExplore"},
		{"repro", "BenchmarkResilience"},
		{"repro", "BenchmarkObsPhases"},
		{"repro/internal/valence", "BenchmarkCertify"},
		{"repro/internal/valence", "BenchmarkFieldSweep"},
		{"repro/internal/obs", "BenchmarkObs"},
	}
	report := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  *benchtime,
	}
	var interrupted error
	for _, s := range suites {
		if cerr := ctx.Err(); cerr != nil {
			interrupted = fmt.Errorf("bench: run interrupted before %s (%s): %w", s.pkg, s.pattern, cerr)
			break
		}
		testArgs := []string{"test", "-run", "^$",
			"-bench", s.pattern, "-benchmem", "-benchtime", *benchtime}
		if *profiledir != "" {
			// Profiling keeps the test binary next to the profiles so
			// `go tool pprof <binary> <profile>` resolves symbols.
			slug := strings.ReplaceAll(strings.TrimPrefix(s.pkg, "repro"), "/", "_")
			if slug == "" {
				slug = "_root"
			}
			testArgs = append(testArgs,
				"-cpuprofile", filepath.Join(*profiledir, "cpu"+slug+".prof"),
				"-memprofile", filepath.Join(*profiledir, "mem"+slug+".prof"),
				"-o", filepath.Join(*profiledir, "bench"+slug+".test"))
		}
		testArgs = append(testArgs, s.pkg)
		cmd := exec.Command("go", testArgs...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("%s: %w", s.pkg, err)
		}
		if *verbose {
			os.Stderr.Write(buf.Bytes())
		}
		results, err := parseBench(&buf, s.pkg)
		if err != nil {
			return fmt.Errorf("%s: %w", s.pkg, err)
		}
		report.Benchmarks = append(report.Benchmarks, results...)
	}

	// The geomean goes into the JSON document, so the baseline is folded
	// in before the file is written.
	var base *Report
	if *baseline != "" {
		base, err = readReport(*baseline)
		if err != nil {
			return fmt.Errorf("baseline delta: %w", err)
		}
		report.Baseline = filepath.Base(*baseline)
		report.GeomeanSpeedup, _ = geomeanSpeedup(base, &report)
	}
	report.ExploreShardedSpeedup, _ = exploreSpeedup(&report)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: %d benchmarks -> %s\n", len(report.Benchmarks), *out)
	if gm, n := exploreSpeedup(&report); n > 0 {
		fmt.Printf("explore sharded/legacy geomean: %.2fx over %d paired rows\n", gm, n)
	}
	if base != nil {
		printDelta(*baseline, base, &report)
	}
	if interrupted != nil {
		return resFlags.Finish(interrupted)
	}
	return nil
}

// readReport loads a previously written bench JSON document.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// geomeanSpeedup returns the geometric mean of old/new ns/op across every
// benchmark present in both reports (matched by package+name), and the
// number of shared rows. No shared rows yields (0, 0).
func geomeanSpeedup(base, report *Report) (float64, int) {
	type key struct{ pkg, name string }
	old := make(map[key]float64, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		if r.NsPerOp > 0 {
			old[key{r.Package, r.Name}] = r.NsPerOp
		}
	}
	logSum, n := 0.0, 0
	for _, r := range report.Benchmarks {
		b, ok := old[key{r.Package, r.Name}]
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		logSum += math.Log(b / r.NsPerOp)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return math.Exp(logSum / float64(n)), n
}

// exploreSpeedup pairs each BenchmarkExplore ".../legacy/..." row with its
// ".../sharded/..." twin in the same report and returns the geometric mean
// of legacy/sharded ns/op over the pairs, with the pair count. Reports
// without the grid yield (0, 0).
func exploreSpeedup(report *Report) (float64, int) {
	sharded := make(map[string]float64)
	for _, r := range report.Benchmarks {
		if strings.HasPrefix(r.Name, "BenchmarkExplore/") && strings.Contains(r.Name, "/sharded/") && r.NsPerOp > 0 {
			sharded[r.Name] = r.NsPerOp
		}
	}
	logSum, n := 0.0, 0
	for _, r := range report.Benchmarks {
		if !strings.HasPrefix(r.Name, "BenchmarkExplore/") || !strings.Contains(r.Name, "/legacy/") || r.NsPerOp <= 0 {
			continue
		}
		s, ok := sharded[strings.Replace(r.Name, "/legacy/", "/sharded/", 1)]
		if !ok {
			continue
		}
		logSum += math.Log(r.NsPerOp / s)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return math.Exp(logSum/float64(n)), n
}

// printDelta prints a side-by-side comparison of the fresh report against a
// baseline JSON: ns/op, states/sec where both rows carry it, every custom
// counter-snapshot metric (e.g. cache-hit-%) present on both sides, and a
// closing one-line geomean speedup over the shared rows. Rows only present
// on one side are marked as new or dropped.
func printDelta(path string, base, report *Report) {
	type key struct{ pkg, name string }
	old := make(map[key]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		old[key{r.Package, r.Name}] = r
	}
	fmt.Printf("\ndelta vs %s (%s):\n", path, base.Benchtime)
	fmt.Printf("%-55s %14s %14s %9s %s\n", "benchmark", "old ns/op", "new ns/op", "speedup", "states/sec old -> new")
	for _, r := range report.Benchmarks {
		k := key{r.Package, r.Name}
		b, ok := old[k]
		if !ok {
			fmt.Printf("%-55s %14s %14.0f %9s\n", r.Name, "(new)", r.NsPerOp, "-")
			continue
		}
		delete(old, k)
		speed := "-"
		if r.NsPerOp > 0 && b.NsPerOp > 0 {
			speed = fmt.Sprintf("%.2fx", b.NsPerOp/r.NsPerOp)
		}
		sps := ""
		if b.StatesPerSec > 0 && r.StatesPerSec > 0 {
			sps = fmt.Sprintf("%.0f -> %.0f (%.2fx)", b.StatesPerSec, r.StatesPerSec, r.StatesPerSec/b.StatesPerSec)
		}
		fmt.Printf("%-55s %14.0f %14.0f %9s %s\n", r.Name, b.NsPerOp, r.NsPerOp, speed, sps)
		if extras := formatExtraDelta(b.Extra, r.Extra); extras != "" {
			fmt.Printf("%-55s %s\n", "", extras)
		}
	}
	for k := range old {
		fmt.Printf("%-55s (dropped)\n", k.name)
	}
	if gm, n := geomeanSpeedup(base, report); n > 0 {
		fmt.Printf("geomean speedup: %.2fx over %d shared benchmarks\n", gm, n)
	}
}

// formatExtraDelta renders "unit: old -> new" for every custom metric both
// rows report, sorted by unit name. Metrics on only one side are skipped —
// a baseline from before a metric existed should not flag every row.
func formatExtraDelta(old, new map[string]float64) string {
	var units []string
	for u := range new {
		if _, ok := old[u]; ok {
			units = append(units, u)
		}
	}
	sort.Strings(units)
	var parts []string
	for _, u := range units {
		ov, nv := old[u], new[u]
		if ov == nv {
			parts = append(parts, fmt.Sprintf("%s: %.4g (=)", u, nv))
			continue
		}
		parts = append(parts, fmt.Sprintf("%s: %.4g -> %.4g", u, ov, nv))
	}
	return strings.Join(parts, "  ")
}

// parseBench extracts Result rows from `go test -bench` output. Benchmark
// lines look like:
//
//	BenchmarkE1_InitialConnectivity/n=5-8  142  8234567 ns/op  12 B/op  3 allocs/op  40 states
func parseBench(r *bytes.Buffer, pkg string) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{
			// Strip the trailing -GOMAXPROCS suffix from the name.
			Name:       trimProcSuffix(fields[0]),
			Package:    pkg,
			Iterations: iters,
		}
		// The rest of the line is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			case "states":
				res.States = v
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[fields[i+1]] = v
			}
		}
		if res.States > 0 && res.NsPerOp > 0 {
			res.StatesPerSec = res.States / (res.NsPerOp / 1e9)
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// trimProcSuffix removes the "-N" GOMAXPROCS suffix go test appends to
// benchmark names.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
