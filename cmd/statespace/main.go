// Command statespace explores a model's reachable state graph to a depth
// bound and emits it in Graphviz DOT format (to stdout), with states ranked
// by layer depth and edges labeled by environment actions. Pipe the output
// to `dot -Tsvg` to visualize a layered submodel.
//
// Usage:
//
//	statespace -model mobile -n 3 -bound 2 -depth 2 > graph.dot
//	statespace -model sync-st -n 3 -t 1 -bound 2 -depth 2 -max 150
//
// Long explorations are interruptible: SIGINT (or an elapsed -deadline)
// stops at the next layer boundary, writes the -checkpoint snapshot, and
// exits nonzero; rerunning with -resume finishes the exploration with a
// graph bit-identical to an uninterrupted run's:
//
//	statespace -model sync-st -n 5 -t 2 -bound 3 -depth 3 -checkpoint st.ckpt
//	statespace -model sync-st -n 5 -t 2 -bound 3 -depth 3 -resume st.ckpt
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/resilient"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "statespace:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("statespace", flag.ContinueOnError)
	var (
		model = fs.String("model", "mobile", "model: "+strings.Join(cli.Models(), "|"))
		n     = fs.Int("n", 3, "number of processes")
		t     = fs.Int("t", 1, "failure budget (sync-st)")
		bound = fs.Int("bound", 2, "protocol decision bound")
		depth = fs.Int("depth", 2, "exploration depth (layers)")
		max   = fs.Int("max", 200, "max nodes rendered (0 = all)")
	)
	obsFlags := cli.RegisterObs(fs)
	resFlags := cli.RegisterResilience(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopObs, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer stopObs()
	ctx, stopRes, err := resFlags.Start()
	if err != nil {
		return err
	}
	defer stopRes()
	m, err := cli.Build(cli.Spec{Model: *model, N: *n, T: *t, Bound: *bound})
	if err != nil {
		return err
	}
	g, err := core.ExploreCtx(ctx, m, *depth, 1_000_000)
	if err != nil {
		if errors.Is(err, resilient.ErrPartial) && !errors.Is(err, core.ErrNodeBudget) {
			// Canceled or past deadline: save the checkpoint, report the
			// partial graph, and exit nonzero.
			if g != nil {
				fmt.Fprintf(os.Stderr, "statespace: partial graph: %d states\n", g.Len())
			}
			return resFlags.Finish(err)
		}
		if !errors.Is(err, core.ErrNodeBudget) {
			return err
		}
		fmt.Fprintf(os.Stderr, "statespace: %v; rendering the partial graph\n", err)
	}
	fmt.Fprintf(os.Stderr, "statespace: %s, %d states to depth %d\n", m.Name(), g.Len(), *depth)
	_, err = fmt.Fprint(out, trace.GraphDOT(g, trace.DOTOptions{MaxNodes: *max}))
	return err
}
