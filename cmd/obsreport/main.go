package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Exit codes: 0 clean report, 1 regression found (-diff), 2 usage or
// parse failure.
const (
	exitOK         = 0
	exitRegression = 1
	exitError      = 2
)

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obsreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 10, "show the `k` largest counters")
	chrome := fs.String("chrome", "", "export spans to `file` in Chrome Trace Event Format (load in Perfetto)")
	diff := fs.String("diff", "", "compare phase times against baseline journal `file`; exits 1 on regression")
	threshold := fs.Float64("threshold", 2.0, "-diff regression ratio: fail when a phase slows by at least this `factor`")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: obsreport [flags] journal.jsonl\n")
		fmt.Fprintf(stderr, "       obsreport -diff baseline.jsonl [flags] journal.jsonl\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return exitError
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return exitError
	}

	events, err := loadJournal(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "obsreport: %v\n", err)
		return exitError
	}

	if *diff != "" {
		baseEvents, err := loadJournal(*diff)
		if err != nil {
			fmt.Fprintf(stderr, "obsreport: %v\n", err)
			return exitError
		}
		return runDiff(stdout, stderr, baseEvents, events, *threshold)
	}

	spans, open, err := buildSpans(events)
	if err != nil {
		fmt.Fprintf(stderr, "obsreport: %s: %v\n", fs.Arg(0), err)
		return exitError
	}
	report(stdout, events, spans, open, *top)

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintf(stderr, "obsreport: %v\n", err)
			return exitError
		}
		if err := writeChrome(f, events); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "obsreport: chrome export: %v\n", err)
			return exitError
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "obsreport: chrome export: %v\n", err)
			return exitError
		}
		fmt.Fprintf(stdout, "\nchrome trace written to %s (open in https://ui.perfetto.dev)\n", *chrome)
	}
	return exitOK
}

func loadJournal(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := readJournal(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// ns renders a nanosecond quantity as a rounded duration.
func ns(v int64) string {
	d := time.Duration(v)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// report renders the standard single-journal analysis: phase attribution
// from the span tree, latency/value histograms, and the top counters from
// the final snapshot.
func report(w io.Writer, events []Event, spans []Span, open, top int) {
	fmt.Fprintf(w, "journal: %d events, %d spans", len(events), len(spans))
	if open > 0 {
		fmt.Fprintf(w, " (%d unterminated — interrupted run?)", open)
	}
	fmt.Fprintln(w)

	if len(spans) > 0 {
		fmt.Fprintln(w, "\nPHASE ATTRIBUTION (span tree)")
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "phase\tcount\ttotal\tself\tmax\t")
		for _, r := range phaseRows(spans) {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t\n",
				r.Name, r.Count, ns(r.TotalNs), ns(r.SelfNs), ns(r.MaxNs))
		}
		tw.Flush()
	}

	snap := lastSnapshot(events)
	hists, used := histRows(snap)
	if len(hists) > 0 {
		fmt.Fprintln(w, "\nHISTOGRAMS (final snapshot)")
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "name\tcount\tp50\tp90\tp99\tmax\ttotal\t")
		for _, h := range hists {
			if h.Nanos {
				fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t\n",
					h.Name, h.Count, ns(h.P50), ns(h.P90), ns(h.P99), ns(h.MaxV), ns(h.Total))
			} else {
				fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t\t\n",
					h.Name, h.Count, h.P50, h.P90, h.P99, h.MaxV)
			}
		}
		tw.Flush()
	}

	if counters := topCounters(snap, used, top); len(counters) > 0 {
		fmt.Fprintf(w, "\nTOP %d COUNTERS (final snapshot)\n", len(counters))
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
		for _, c := range counters {
			fmt.Fprintf(tw, "%s\t%d\t\n", c.Name, c.Value)
		}
		tw.Flush()
	}
}

// runDiff renders the phase-time comparison and returns the exit code:
// exitRegression when any phase slowed by at least threshold.
func runDiff(stdout, stderr io.Writer, baseEvents, events []Event, threshold float64) int {
	baseSpans, _, err := buildSpans(baseEvents)
	if err != nil {
		fmt.Fprintf(stderr, "obsreport: baseline: %v\n", err)
		return exitError
	}
	spans, _, err := buildSpans(events)
	if err != nil {
		fmt.Fprintf(stderr, "obsreport: %v\n", err)
		return exitError
	}
	rows, regressed := diffPhases(baseSpans, spans, threshold)
	fmt.Fprintf(stdout, "PHASE DIFF (threshold %.2fx)\n", threshold)
	tw := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "phase\tbaseline\tcurrent\tratio\t\t")
	for _, r := range rows {
		switch {
		case r.OnlyA:
			fmt.Fprintf(tw, "%s\t%s\t-\t\tgone\t\n", r.Name, ns(r.ANs))
		case r.OnlyB:
			fmt.Fprintf(tw, "%s\t-\t%s\t\tnew\t\n", r.Name, ns(r.BNs))
		default:
			mark := ""
			if r.Regressed {
				mark = "REGRESSED"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%.2fx\t%s\t\n", r.Name, ns(r.ANs), ns(r.BNs), r.Ratio, mark)
		}
	}
	tw.Flush()
	if regressed {
		fmt.Fprintf(stderr, "obsreport: phase regression of >= %.2fx detected\n", threshold)
		return exitRegression
	}
	return exitOK
}
