// Command obsreport analyzes the JSONL run-event journals written by the
// engine tools (-journal, -trace): it attributes run time to phases from
// the span tree, tabulates counters and latency histograms from the final
// snapshot, exports spans to Chrome Trace Event Format for Perfetto, and
// diffs two journals for phase-time regressions.
//
// This file is the analysis library: journal parsing, span reconstruction,
// phase attribution, snapshot extraction, Chrome export, and the diff.
// main.go owns flags and rendering.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Event is one parsed journal line (the obs eventJSON schema).
type Event struct {
	Event    string           `json:"event"`
	Seq      int64            `json:"seq"`
	TsNs     int64            `json:"ts_ns"`
	Fields   map[string]any   `json:"fields"`
	Counters map[string]int64 `json:"counters"`
}

// maxLine bounds one journal line; counter snapshots grow with the metric
// namespace, not the run, so 16 MiB is far beyond any real line.
const maxLine = 16 << 20

// readJournal parses a JSONL journal. Any malformed line is an error — a
// truncated or corrupt journal must fail loudly, not silently thin out.
func readJournal(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("journal line %d: %w", line, err)
		}
		if ev.Event == "" {
			return nil, fmt.Errorf("journal line %d: missing event name", line)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal line %d: %w", line+1, err)
	}
	return out, nil
}

// Span is one reconstructed span: a matched span.begin/span.end pair.
type Span struct {
	ID, Parent uint64
	Name       string
	Lane       int
	BeginNs    int64 // journal timestamp of span.begin
	EndNs      int64 // journal timestamp of span.end
	DurNs      int64 // measured duration from the span.end event
}

// fieldNum reads a numeric field (JSON numbers decode as float64).
func fieldNum(ev Event, key string) (int64, bool) {
	v, ok := ev.Fields[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	if !ok {
		return 0, false
	}
	return int64(f), true
}

// fieldStr reads a string field.
func fieldStr(ev Event, key string) (string, bool) {
	v, ok := ev.Fields[key]
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

// buildSpans matches span.begin/span.end pairs into completed spans, in
// begin order. open counts spans begun but never ended (an interrupted
// run); they are excluded from the result.
func buildSpans(events []Event) (spans []Span, open int, err error) {
	byID := make(map[uint64]int) // span id -> index into spans
	for _, ev := range events {
		switch ev.Event {
		case "span.begin":
			id, ok := fieldNum(ev, "span")
			if !ok || id <= 0 {
				return nil, 0, fmt.Errorf("span.begin (seq %d) has no span id", ev.Seq)
			}
			name, ok := fieldStr(ev, "name")
			if !ok {
				return nil, 0, fmt.Errorf("span.begin %d (seq %d) has no name", id, ev.Seq)
			}
			if _, dup := byID[uint64(id)]; dup {
				return nil, 0, fmt.Errorf("span id %d begun twice (seq %d)", id, ev.Seq)
			}
			parent, _ := fieldNum(ev, "parent")
			lane, _ := fieldNum(ev, "lane")
			byID[uint64(id)] = len(spans)
			spans = append(spans, Span{
				ID:      uint64(id),
				Parent:  uint64(parent),
				Name:    name,
				Lane:    int(lane),
				BeginNs: ev.TsNs,
				EndNs:   -1,
			})
		case "span.end":
			id, ok := fieldNum(ev, "span")
			if !ok || id <= 0 {
				return nil, 0, fmt.Errorf("span.end (seq %d) has no span id", ev.Seq)
			}
			idx, ok := byID[uint64(id)]
			if !ok {
				return nil, 0, fmt.Errorf("span.end %d (seq %d) without begin", id, ev.Seq)
			}
			if spans[idx].EndNs >= 0 {
				return nil, 0, fmt.Errorf("span id %d ended twice (seq %d)", id, ev.Seq)
			}
			spans[idx].EndNs = ev.TsNs
			if d, ok := fieldNum(ev, "dur_ns"); ok {
				spans[idx].DurNs = d
			} else {
				spans[idx].DurNs = ev.TsNs - spans[idx].BeginNs
			}
		}
	}
	complete := spans[:0]
	for _, s := range spans {
		if s.EndNs < 0 {
			open++
			continue
		}
		complete = append(complete, s)
	}
	return complete, open, nil
}

// PhaseRow aggregates every span of one name: how many ran, their total
// time, the self time (total minus time attributed to direct children),
// and the slowest single span.
type PhaseRow struct {
	Name    string
	Count   int
	TotalNs int64
	SelfNs  int64
	MaxNs   int64
}

// phaseRows computes the phase-attribution table, sorted by total time
// descending. Self time clamps at zero per span: parallel children (shard
// spans on worker lanes) can sum past their parent's wall time.
func phaseRows(spans []Span) []PhaseRow {
	childNs := make(map[uint64]int64)
	for _, s := range spans {
		if s.Parent != 0 {
			childNs[s.Parent] += s.DurNs
		}
	}
	rows := make(map[string]*PhaseRow)
	for _, s := range spans {
		r := rows[s.Name]
		if r == nil {
			r = &PhaseRow{Name: s.Name}
			rows[s.Name] = r
		}
		r.Count++
		r.TotalNs += s.DurNs
		self := s.DurNs - childNs[s.ID]
		if self > 0 {
			r.SelfNs += self
		}
		if s.DurNs > r.MaxNs {
			r.MaxNs = s.DurNs
		}
	}
	out := make([]PhaseRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNs != out[j].TotalNs {
			return out[i].TotalNs > out[j].TotalNs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// lastSnapshot merges every event's counter snapshot, later events
// winning per key — the state of every counter, gauge, and histogram at
// the last event that reported it.
func lastSnapshot(events []Event) map[string]int64 {
	out := make(map[string]int64)
	for _, ev := range events {
		for k, v := range ev.Counters {
			out[k] = v
		}
	}
	return out
}

// histSuffixes are the derived snapshot keys a timer histogram emits;
// sampleSuffixes the unitless variant. A base name owning these keys is
// rendered as a histogram row and its keys excluded from the counter list.
var (
	histSuffixes   = []string{".count", ".total_ns", ".max_ns", ".p50_ns", ".p90_ns", ".p99_ns"}
	sampleSuffixes = []string{".count", ".max", ".p50", ".p90", ".p99"}
)

// HistRow is one latency or value histogram from the final snapshot.
type HistRow struct {
	Name                string
	Nanos               bool // timer (ns) vs unitless sample
	Count, Total        int64
	P50, P90, P99, MaxV int64
}

// histRows extracts histogram rows from a snapshot, sorted by name, and
// returns the set of snapshot keys they consumed.
func histRows(snap map[string]int64) ([]HistRow, map[string]bool) {
	used := make(map[string]bool)
	var out []HistRow
	for k := range snap {
		base, ok := strings.CutSuffix(k, ".p50_ns")
		if ok {
			r := HistRow{
				Name:  base,
				Nanos: true,
				Count: snap[base+".count"],
				Total: snap[base+".total_ns"],
				P50:   snap[base+".p50_ns"],
				P90:   snap[base+".p90_ns"],
				P99:   snap[base+".p99_ns"],
				MaxV:  snap[base+".max_ns"],
			}
			out = append(out, r)
			for _, suf := range histSuffixes {
				used[base+suf] = true
			}
			continue
		}
		base, ok = strings.CutSuffix(k, ".p50")
		if ok {
			r := HistRow{
				Name:  base,
				Count: snap[base+".count"],
				P50:   snap[base+".p50"],
				P90:   snap[base+".p90"],
				P99:   snap[base+".p99"],
				MaxV:  snap[base+".max"],
			}
			out = append(out, r)
			for _, suf := range sampleSuffixes {
				used[base+suf] = true
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, used
}

// CounterRow is one plain counter from the final snapshot.
type CounterRow struct {
	Name  string
	Value int64
}

// topCounters returns the k largest plain counters (histogram-derived keys
// excluded), ties broken by name.
func topCounters(snap map[string]int64, used map[string]bool, k int) []CounterRow {
	out := make([]CounterRow, 0, len(snap))
	for name, v := range snap {
		if used[name] {
			continue
		}
		out = append(out, CounterRow{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// chromeEvent is one Trace Event Format entry (the JSON Array-with-
// metadata flavor Perfetto and chrome://tracing load).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// writeChrome exports the journal's spans as B/E pairs. Lanes map to
// Chrome tids, so parallel shards render side by side; journal order is
// emission order, which has stack discipline per lane. Spans begun but
// never ended (interrupted runs) are dropped so every B has its E.
func writeChrome(w io.Writer, events []Event) error {
	ended := make(map[uint64]bool)
	for _, ev := range events {
		if ev.Event != "span.end" {
			continue
		}
		if id, ok := fieldNum(ev, "span"); ok {
			ended[uint64(id)] = true
		}
	}
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	began := make(map[uint64]bool)
	for _, ev := range events {
		switch ev.Event {
		case "span.begin":
			id, ok := fieldNum(ev, "span")
			if !ok || !ended[uint64(id)] {
				continue
			}
			name, _ := fieldStr(ev, "name")
			parent, _ := fieldNum(ev, "parent")
			lane, _ := fieldNum(ev, "lane")
			began[uint64(id)] = true
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: name,
				Ph:   "B",
				Ts:   float64(ev.TsNs) / 1e3,
				Pid:  1,
				Tid:  int(lane),
				Args: map[string]any{"span": id, "parent": parent},
			})
		case "span.end":
			id, ok := fieldNum(ev, "span")
			if !ok || !began[uint64(id)] {
				continue
			}
			name, _ := fieldStr(ev, "name")
			lane, _ := fieldNum(ev, "lane")
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: name,
				Ph:   "E",
				Ts:   float64(ev.TsNs) / 1e3,
				Pid:  1,
				Tid:  int(lane),
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// DiffRow compares one phase across two journals.
type DiffRow struct {
	Name         string
	ANs, BNs     int64
	Ratio        float64 // BNs/ANs; 0 when the phase is absent from A
	Regressed    bool
	OnlyA, OnlyB bool
}

// diffPhases compares per-phase total span time between a baseline (A)
// and a candidate (B). A phase regresses when it appears in both and B's
// total is at least threshold times A's. Rows sort by B total descending.
func diffPhases(a, b []Span, threshold float64) (rows []DiffRow, regressed bool) {
	totals := func(spans []Span) map[string]int64 {
		m := make(map[string]int64)
		for _, s := range spans {
			m[s.Name] += s.DurNs
		}
		return m
	}
	at, bt := totals(a), totals(b)
	names := make(map[string]bool, len(at)+len(bt))
	for n := range at {
		names[n] = true
	}
	for n := range bt {
		names[n] = true
	}
	for n := range names {
		row := DiffRow{Name: n, ANs: at[n], BNs: bt[n]}
		_, inA := at[n]
		_, inB := bt[n]
		row.OnlyA = inA && !inB
		row.OnlyB = inB && !inA
		if inA && inB && row.ANs > 0 {
			row.Ratio = float64(row.BNs) / float64(row.ANs)
			if row.Ratio >= threshold {
				row.Regressed = true
				regressed = true
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].BNs != rows[j].BNs {
			return rows[i].BNs > rows[j].BNs
		}
		return rows[i].Name < rows[j].Name
	})
	return rows, regressed
}
