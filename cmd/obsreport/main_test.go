package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// traceJournal produces a real journal through the obs tracer: a root
// explore span with two layer children, a shard span on lane 1, and a
// sequential certify phase — the shape a traced engine run emits.
func traceJournal(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	m := obs.NewMetrics()
	j := obs.NewJournal(&buf)
	m.SetJournal(j)
	tr := obs.NewTracer(m, j)

	root := tr.Begin("explore", 0)
	for i := 0; i < 2; i++ {
		layer := tr.Begin("explore.layer", root.ID)
		shard := tr.BeginLane("explore.warm.shard", layer.ID, 1)
		tr.End(shard)
		tr.End(layer)
	}
	tr.End(root)
	cert := tr.Begin("certify", 0)
	tr.End(cert)
	m.Add("explore.nodes", 204)
	m.Add("certify.visits", 57)
	m.Observe("explore.layer.time", 1234567)
	m.Event("run.done")
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// syntheticJournal writes span pairs with explicit durations (ns), one
// root span per name.
func syntheticJournal(t *testing.T, durs map[string]int64) string {
	t.Helper()
	var buf bytes.Buffer
	id := 0
	ts := int64(0)
	for name, d := range durs {
		id++
		fmt.Fprintf(&buf, `{"event":"span.begin","seq":%d,"ts_ns":%d,"fields":{"span":%d,"parent":0,"name":%q,"lane":0}}`+"\n",
			2*id-2, ts, id, name)
		ts += d
		fmt.Fprintf(&buf, `{"event":"span.end","seq":%d,"ts_ns":%d,"fields":{"span":%d,"name":%q,"lane":0,"dur_ns":%d}}`+"\n",
			2*id-1, ts, id, name, d)
	}
	path := filepath.Join(t.TempDir(), "synthetic.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportRendersPhaseTable(t *testing.T) {
	journal := traceJournal(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{journal}, &stdout, &stderr); code != exitOK {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"PHASE ATTRIBUTION", "explore.layer", "explore.warm.shard", "certify",
		"HISTOGRAMS", "explore.layer.time", "span.explore",
		"COUNTERS", "explore.nodes", "certify.visits",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestPhaseAttributionSelfTime(t *testing.T) {
	events := []Event{
		{Event: "span.begin", TsNs: 0, Fields: map[string]any{"span": 1.0, "parent": 0.0, "name": "parent", "lane": 0.0}},
		{Event: "span.begin", TsNs: 10, Fields: map[string]any{"span": 2.0, "parent": 1.0, "name": "child", "lane": 0.0}},
		{Event: "span.end", TsNs: 70, Fields: map[string]any{"span": 2.0, "name": "child", "lane": 0.0, "dur_ns": 60.0}},
		{Event: "span.end", TsNs: 100, Fields: map[string]any{"span": 1.0, "name": "parent", "lane": 0.0, "dur_ns": 100.0}},
	}
	spans, open, err := buildSpans(events)
	if err != nil || open != 0 {
		t.Fatalf("buildSpans: open=%d err=%v", open, err)
	}
	rows := phaseRows(spans)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Name != "parent" || rows[0].TotalNs != 100 || rows[0].SelfNs != 40 {
		t.Errorf("parent row = %+v, want total 100 self 40", rows[0])
	}
	if rows[1].Name != "child" || rows[1].TotalNs != 60 || rows[1].SelfNs != 60 {
		t.Errorf("child row = %+v, want total 60 self 60", rows[1])
	}
}

func TestBuildSpansCountsUnterminated(t *testing.T) {
	events := []Event{
		{Event: "span.begin", TsNs: 0, Fields: map[string]any{"span": 1.0, "parent": 0.0, "name": "interrupted", "lane": 0.0}},
	}
	spans, open, err := buildSpans(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 0 || open != 1 {
		t.Errorf("spans=%d open=%d, want 0/1", len(spans), open)
	}
}

// TestChromeTraceRoundTrip: the -chrome export of a real traced journal
// is valid Chrome Trace Event Format JSON whose B/E pairs nest with
// stack discipline per (pid, tid).
func TestChromeTraceRoundTrip(t *testing.T) {
	journal := traceJournal(t)
	out := filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-chrome", out, journal}, &stdout, &stderr); code != exitOK {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	if len(trace.TraceEvents)%2 != 0 {
		t.Fatalf("odd event count %d: unpaired B/E", len(trace.TraceEvents))
	}
	type tidKey struct{ pid, tid int }
	stacks := make(map[tidKey][]string)
	lastTs := make(map[tidKey]float64)
	for i, ev := range trace.TraceEvents {
		k := tidKey{ev.Pid, ev.Tid}
		if ev.Ts < lastTs[k] {
			t.Fatalf("event %d: ts went backwards on tid %v", i, k)
		}
		lastTs[k] = ev.Ts
		switch ev.Ph {
		case "B":
			stacks[k] = append(stacks[k], ev.Name)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				t.Fatalf("event %d: E %q on tid %v with empty stack", i, ev.Name, k)
			}
			if top := st[len(st)-1]; top != ev.Name {
				t.Fatalf("event %d: E %q does not match open span %q on tid %v", i, ev.Name, top, k)
			}
			stacks[k] = st[:len(st)-1]
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	for k, st := range stacks {
		if len(st) != 0 {
			t.Errorf("tid %v left %d spans open: %v", k, len(st), st)
		}
	}
}

func TestDiffExitsNonZeroOnRegression(t *testing.T) {
	base := syntheticJournal(t, map[string]int64{"explore": 1_000_000, "certify": 500_000})
	slow := syntheticJournal(t, map[string]int64{"explore": 1_100_000, "certify": 1_200_000})

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-diff", base, slow}, &stdout, &stderr); code != exitRegression {
		t.Fatalf("run = %d, want %d (certify slowed 2.4x)\n%s", code, exitRegression, stdout.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSED") {
		t.Errorf("diff output does not mark the regression:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-diff", base, base}, &stdout, &stderr); code != exitOK {
		t.Fatalf("self-diff = %d, want %d", code, exitOK)
	}

	// A higher threshold tolerates the same slowdown.
	stdout.Reset()
	if code := run([]string{"-diff", base, "-threshold", "3", slow}, &stdout, &stderr); code != exitOK {
		t.Fatalf("run with threshold 3 = %d, want %d", code, exitOK)
	}
}

func TestParseFailureExitsNonZero(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"event\":\"ok\"}\nnot json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{bad}, &stdout, &stderr); code != exitError {
		t.Fatalf("run on corrupt journal = %d, want %d", code, exitError)
	}
	if !strings.Contains(stderr.String(), "line 2") {
		t.Errorf("error does not name the bad line: %s", stderr.String())
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &stdout, &stderr); code != exitError {
		t.Error("missing file must exit non-zero")
	}
	if code := run([]string{}, &stdout, &stderr); code != exitError {
		t.Error("no arguments must exit non-zero with usage")
	}
}
