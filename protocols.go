package layers

import (
	"repro/internal/protocols"
)

// Concrete protocol re-exports: the correct and deliberately-flawed
// candidates the analyses are instantiated with.
type (
	// FloodSet is the classical synchronous flooding consensus protocol;
	// with Rounds = t+1 it is correct in the t-resilient synchronous
	// model, with Rounds = t it is refuted (Corollary 6.3).
	FloodSet = protocols.FloodSet
	// FullInfo is the synchronous full-information protocol (never
	// decides; the strongest instance for structural checks).
	FullInfo = protocols.FullInfo
	// DecideRule adds a decision rule to a non-deciding protocol.
	DecideRule = protocols.DecideRule
	// SMVote is the shared-memory flooding heuristic (refuted under the
	// synchronic layering, Corollary 5.4).
	SMVote = protocols.SMVote
	// SMFullInfo is the shared-memory full-information protocol.
	SMFullInfo = protocols.SMFullInfo
	// MPFlood is the asynchronous message-passing flooding heuristic
	// (refuted under the permutation layering).
	MPFlood = protocols.MPFlood
	// MPFullInfo is the message-passing full-information protocol.
	MPFullInfo = protocols.MPFullInfo
	// EIG is exponential-information-gathering consensus (provenance
	// trees); correct at t+1 rounds, refuted at t.
	EIG = protocols.EIG
	// EarlyFloodSet is FloodSet with heard-set-stability early stopping.
	EarlyFloodSet = protocols.EarlyFloodSet
	// ConstantDecider deliberately violates validity (certifier fodder).
	ConstantDecider = protocols.ConstantDecider
	// FlickerDecider deliberately violates write-once decisions.
	FlickerDecider = protocols.FlickerDecider
)
